"""Simplified QUIC (RFC 9000 framing, opaque protected payloads).

When every participant is on Vision Pro, FaceTime carries the spatial
persona over QUIC, end-to-end encrypted with TLS 1.3 (Sec. 4.1, Sec. 5).  A
passive observer — the position this reproduction puts its analysis layer
in — sees only header forms and ciphertext.  This module implements exactly
that surface:

- long-header Initial/Handshake packets for connection setup,
- short-header 1-RTT packets whose payload is ciphertext (a toy stream
  cipher keyed per connection: *not* cryptographically secure, but it makes
  the payload bytes opaque and incompressible like real TLS records), and
- the first-byte invariants (RFC 8999) the protocol classifier keys on.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import List, Optional

#: RFC 9000: the "fixed bit" — set on every QUIC packet.
QUIC_FIXED_BIT = 0x40
#: RFC 9000: the header-form bit — set on long-header packets only.
QUIC_LONG_HEADER_BIT = 0x80

#: Connection ID length this implementation always uses.
CONNECTION_ID_BYTES = 8
#: Packet-number encoding width (we always use the 4-byte encoding).
PACKET_NUMBER_BYTES = 4

#: Short header: flags(1) + dcid(8) + packet number(4).
SHORT_HEADER_BYTES = 1 + CONNECTION_ID_BYTES + PACKET_NUMBER_BYTES

#: Per-packet payload budget inside the media MTU.
QUIC_MAX_PAYLOAD = 1175

#: Long-header packet types (RFC 9000 Sec. 17.2).
TYPE_INITIAL = 0x0
TYPE_HANDSHAKE = 0x2


@dataclass(frozen=True)
class QuicPacketHeader:
    """Decoded view of a QUIC packet header (short or long form)."""

    long_form: bool
    packet_type: Optional[int]  # None for short-header packets
    dcid: bytes
    packet_number: int


def is_quic_datagram(data: bytes) -> bool:
    """First-byte check per the QUIC invariants (RFC 8999).

    The fixed bit must be set; RTP version-2 datagrams have first byte
    0b10xxxxxx with the 0x40 bit clear, so the two protocols are separable
    exactly the way Wireshark separates them.
    """
    return len(data) >= SHORT_HEADER_BYTES and bool(data[0] & QUIC_FIXED_BIT)


def parse_header(data: bytes) -> QuicPacketHeader:
    """Parse a short- or long-form header from the front of a datagram.

    Raises:
        ValueError: If the bytes violate the QUIC invariants.
    """
    if not is_quic_datagram(data):
        raise ValueError("not a QUIC datagram (fixed bit clear or too short)")
    first = data[0]
    if first & QUIC_LONG_HEADER_BIT:
        if len(data) < 7 + CONNECTION_ID_BYTES:
            raise ValueError("truncated long header")
        packet_type = (first >> 4) & 0x3
        # version(4) | dcid_len(1) | dcid | ... ; we emit fixed-size fields.
        dcid = data[6:6 + CONNECTION_ID_BYTES]
        number = struct.unpack(
            "!I", data[6 + CONNECTION_ID_BYTES:10 + CONNECTION_ID_BYTES]
        )[0]
        return QuicPacketHeader(True, packet_type, dcid, number)
    dcid = data[1:1 + CONNECTION_ID_BYTES]
    number = struct.unpack("!I", data[1 + CONNECTION_ID_BYTES:SHORT_HEADER_BYTES])[0]
    return QuicPacketHeader(False, None, dcid, number)


def _keystream(key: bytes, nonce: int, length: int) -> bytes:
    """Deterministic pseudo-random keystream (toy cipher, not secure)."""
    out = bytearray()
    counter = 0
    while len(out) < length:
        block = hashlib.sha256(key + struct.pack("!QI", nonce, counter)).digest()
        out.extend(block)
        counter += 1
    return bytes(out[:length])


class QuicConnection:
    """One end of a QUIC connection carrying a protected media stream."""

    def __init__(self, dcid: bytes, secret: bytes) -> None:
        if len(dcid) != CONNECTION_ID_BYTES:
            raise ValueError(f"dcid must be {CONNECTION_ID_BYTES} bytes")
        self.dcid = dcid
        self._secret = secret
        self._packet_number = 0
        self.handshake_complete = False

    # ------------------------------------------------------------------
    # Handshake (long-header packets)
    # ------------------------------------------------------------------

    def initial_packet(self, client_hello_bytes: int = 512) -> bytes:
        """The client Initial carrying a (padded) TLS ClientHello."""
        return self._long_packet(TYPE_INITIAL, bytes(client_hello_bytes))

    def handshake_packet(self, flight_bytes: int = 256) -> bytes:
        """A Handshake-space packet completing the TLS 1.3 exchange."""
        packet = self._long_packet(TYPE_HANDSHAKE, bytes(flight_bytes))
        self.handshake_complete = True
        return packet

    def _long_packet(self, packet_type: int, payload: bytes) -> bytes:
        first = QUIC_LONG_HEADER_BIT | QUIC_FIXED_BIT | (packet_type << 4)
        number = self._next_number()
        header = (
            bytes([first])
            + struct.pack("!I", 1)  # version
            + bytes([CONNECTION_ID_BYTES])
            + self.dcid
            + struct.pack("!I", number)
        )
        return header + self._protect(number, payload)

    # ------------------------------------------------------------------
    # 1-RTT data (short-header packets)
    # ------------------------------------------------------------------

    def protect_frame(self, frame: bytes) -> List[bytes]:
        """Encrypt one application frame into 1-RTT datagrams."""
        if not frame:
            raise ValueError("cannot send an empty frame")
        datagrams = []
        for i in range(0, len(frame), QUIC_MAX_PAYLOAD):
            chunk = frame[i:i + QUIC_MAX_PAYLOAD]
            number = self._next_number()
            header = (
                bytes([QUIC_FIXED_BIT])
                + self.dcid
                + struct.pack("!I", number)
            )
            datagrams.append(header + self._protect(number, chunk))
        return datagrams

    def unprotect(self, datagram: bytes) -> bytes:
        """Decrypt the payload of a datagram addressed to this connection.

        Raises:
            ValueError: On header-form violations or a connection-ID
                mismatch — the situations where real QUIC drops the packet.
        """
        header = parse_header(datagram)
        if header.dcid != self.dcid:
            raise ValueError("connection ID mismatch")
        offset = SHORT_HEADER_BYTES if not header.long_form else 10 + CONNECTION_ID_BYTES
        ciphertext = datagram[offset:]
        return self._xor(header.packet_number, ciphertext)

    def _protect(self, number: int, plaintext: bytes) -> bytes:
        return self._xor(number, plaintext)

    def _xor(self, nonce: int, data: bytes) -> bytes:
        stream = _keystream(self._secret, nonce, len(data))
        return bytes(a ^ b for a, b in zip(data, stream))

    def _next_number(self) -> int:
        number = self._packet_number
        self._packet_number += 1
        return number
