"""RTCP (RFC 3550): sender/receiver reports for the RTP sessions.

The paper collects telepresence statistics "using the tools provided by
Zoom, Webex, and Teams" (Sec. 3.2) — in-app panels whose loss, jitter, and
round-trip numbers come from RTCP.  This module implements the byte-level
Sender Report (SR) and Receiver Report (RR) packets plus the RFC 3550
receiver-side estimators (interarrival jitter, fraction lost, RTT from
LSR/DLSR), so :mod:`repro.vca.stats` can expose the same panel.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

#: RTCP packet types (RFC 3550 Sec. 12.1).
PT_SENDER_REPORT = 200
PT_RECEIVER_REPORT = 201

#: RTCP version, same two bits as RTP.
RTCP_VERSION = 2

_HEADER = struct.Struct("!BBH")          # V/P/RC, PT, length (32-bit words - 1)
_SENDER_INFO = struct.Struct("!IIIII")   # NTP hi, NTP lo, RTP ts, pkts, bytes
_REPORT_BLOCK = struct.Struct("!IBBHIIII")


def _to_ntp(seconds: float) -> Tuple[int, int]:
    """Split a float timestamp into 32.32 fixed-point NTP words."""
    hi = int(seconds)
    lo = int((seconds - hi) * (1 << 32)) & 0xFFFFFFFF
    return hi & 0xFFFFFFFF, lo


def _from_ntp(hi: int, lo: int) -> float:
    """Inverse of :func:`_to_ntp`."""
    return hi + lo / (1 << 32)


def to_ntp_middle(seconds: float) -> int:
    """The middle 32 bits of the NTP timestamp (the LSR/DLSR format)."""
    hi, lo = _to_ntp(seconds)
    return ((hi & 0xFFFF) << 16 | lo >> 16) & 0xFFFFFFFF


@dataclass(frozen=True)
class ReportBlock:
    """One reception report block (RFC 3550 Sec. 6.4.1).

    Attributes:
        ssrc: The reported-on sender's SSRC.
        fraction_lost: Loss fraction since the previous report, in 1/256.
        cumulative_lost: Total packets lost, 24-bit.
        highest_sequence: Extended highest sequence number received.
        jitter: Interarrival jitter in RTP timestamp units.
        last_sr: Middle 32 bits of the last SR's NTP timestamp (LSR).
        delay_since_last_sr: Delay since that SR in 1/65536 s (DLSR).
    """

    ssrc: int
    fraction_lost: int
    cumulative_lost: int
    highest_sequence: int
    jitter: int
    last_sr: int
    delay_since_last_sr: int

    def pack(self) -> bytes:
        """Serialize to the 24 report-block bytes."""
        return _REPORT_BLOCK.pack(
            self.ssrc & 0xFFFFFFFF,
            self.fraction_lost & 0xFF,
            (self.cumulative_lost >> 16) & 0xFF,
            self.cumulative_lost & 0xFFFF,
            self.highest_sequence & 0xFFFFFFFF,
            self.jitter & 0xFFFFFFFF,
            self.last_sr & 0xFFFFFFFF,
            self.delay_since_last_sr & 0xFFFFFFFF,
        )

    @classmethod
    def parse(cls, data: bytes) -> "ReportBlock":
        """Parse one 24-byte block."""
        ssrc, frac, lost_hi, lost_lo, seq, jitter, lsr, dlsr = (
            _REPORT_BLOCK.unpack(data[:24])
        )
        return cls(ssrc, frac, (lost_hi << 16) | lost_lo, seq, jitter, lsr, dlsr)

    @property
    def loss_rate(self) -> float:
        """Fraction lost as a float in [0, 1]."""
        return self.fraction_lost / 256.0


@dataclass(frozen=True)
class SenderReport:
    """An RTCP SR: sender info plus zero or more report blocks."""

    ssrc: int
    ntp_seconds: float
    rtp_timestamp: int
    packet_count: int
    byte_count: int
    blocks: Tuple[ReportBlock, ...] = ()

    def pack(self) -> bytes:
        """Serialize the full SR packet."""
        hi, lo = _to_ntp(self.ntp_seconds)
        body = (
            struct.pack("!I", self.ssrc)
            + _SENDER_INFO.pack(hi, lo, self.rtp_timestamp & 0xFFFFFFFF,
                                self.packet_count & 0xFFFFFFFF,
                                self.byte_count & 0xFFFFFFFF)
            + b"".join(b.pack() for b in self.blocks)
        )
        length_words = (len(body) + _HEADER.size) // 4 - 1
        first = (RTCP_VERSION << 6) | (len(self.blocks) & 0x1F)
        return _HEADER.pack(first, PT_SENDER_REPORT, length_words) + body


@dataclass(frozen=True)
class ReceiverReport:
    """An RTCP RR from a non-sending (or any) participant."""

    ssrc: int
    blocks: Tuple[ReportBlock, ...] = ()

    def pack(self) -> bytes:
        """Serialize the full RR packet."""
        body = struct.pack("!I", self.ssrc) + b"".join(
            b.pack() for b in self.blocks
        )
        length_words = (len(body) + _HEADER.size) // 4 - 1
        first = (RTCP_VERSION << 6) | (len(self.blocks) & 0x1F)
        return _HEADER.pack(first, PT_RECEIVER_REPORT, length_words) + body


def parse_rtcp(data: bytes):
    """Parse an SR or RR from packet bytes.

    Returns:
        A :class:`SenderReport` or :class:`ReceiverReport`.

    Raises:
        ValueError: If the bytes are not a version-2 SR/RR.
    """
    if len(data) < _HEADER.size + 4:
        raise ValueError("RTCP packet too short")
    first, packet_type, _length = _HEADER.unpack_from(data)
    if first >> 6 != RTCP_VERSION:
        raise ValueError("not RTCP version 2")
    count = first & 0x1F
    offset = _HEADER.size
    ssrc = struct.unpack_from("!I", data, offset)[0]
    offset += 4
    if packet_type == PT_SENDER_REPORT:
        hi, lo, rtp_ts, pkts, octets = _SENDER_INFO.unpack_from(data, offset)
        offset += _SENDER_INFO.size
        blocks = _parse_blocks(data, offset, count)
        return SenderReport(ssrc, _from_ntp(hi, lo), rtp_ts, pkts, octets,
                            blocks)
    if packet_type == PT_RECEIVER_REPORT:
        return ReceiverReport(ssrc, _parse_blocks(data, offset, count))
    raise ValueError(f"unsupported RTCP packet type {packet_type}")


def _parse_blocks(data: bytes, offset: int, count: int
                  ) -> Tuple[ReportBlock, ...]:
    blocks = []
    for i in range(count):
        start = offset + 24 * i
        if start + 24 > len(data):
            raise ValueError("truncated report block")
        blocks.append(ReportBlock.parse(data[start:start + 24]))
    return tuple(blocks)


class ReceptionEstimator:
    """Receiver-side statistics for one incoming RTP stream (RFC 3550 A.8).

    Feed it every received RTP packet; it maintains the extended highest
    sequence number, cumulative/interval loss, and the jitter estimate,
    and produces report blocks for outgoing RRs.
    """

    def __init__(self, ssrc: int, clock_rate_hz: int) -> None:
        if clock_rate_hz <= 0:
            raise ValueError("clock rate must be positive")
        self.ssrc = ssrc
        self.clock_rate_hz = clock_rate_hz
        self._base_seq: Optional[int] = None
        self._max_seq = 0
        self._cycles = 0
        self.packets_received = 0
        self._jitter = 0.0
        self._last_transit: Optional[float] = None
        self._expected_prior = 0
        self._received_prior = 0
        self._last_sr_ntp_middle = 0
        self._last_sr_arrival: Optional[float] = None

    def on_rtp(self, sequence: int, rtp_timestamp: int,
               arrival_s: float) -> None:
        """Register one received RTP packet."""
        if self._base_seq is None:
            self._base_seq = sequence
            self._max_seq = sequence
        elif sequence < self._max_seq and self._max_seq - sequence > 0x8000:
            self._cycles += 1 << 16
            self._max_seq = sequence
        elif sequence > self._max_seq:
            self._max_seq = sequence
        self.packets_received += 1
        # Interarrival jitter (RFC 3550 Sec. 6.4.1 / A.8), in ts units.
        transit = arrival_s * self.clock_rate_hz - rtp_timestamp
        if self._last_transit is not None:
            delta = abs(transit - self._last_transit)
            self._jitter += (delta - self._jitter) / 16.0
        self._last_transit = transit

    def on_sender_report(self, report: SenderReport, arrival_s: float) -> None:
        """Register an SR from this stream's sender (for RTT computation)."""
        self._last_sr_ntp_middle = to_ntp_middle(report.ntp_seconds)
        self._last_sr_arrival = arrival_s

    @property
    def extended_highest_sequence(self) -> int:
        """Cycles + highest sequence seen."""
        return self._cycles + self._max_seq

    @property
    def expected(self) -> int:
        """Packets expected given the sequence span."""
        if self._base_seq is None:
            return 0
        return self.extended_highest_sequence - self._base_seq + 1

    @property
    def cumulative_lost(self) -> int:
        """Total packets lost so far (floored at zero)."""
        return max(0, self.expected - self.packets_received)

    @property
    def jitter_seconds(self) -> float:
        """Current jitter estimate converted to seconds."""
        return self._jitter / self.clock_rate_hz

    def make_report_block(self, now_s: float) -> ReportBlock:
        """Produce a report block for the next outgoing RR/SR."""
        expected_interval = self.expected - self._expected_prior
        received_interval = self.packets_received - self._received_prior
        self._expected_prior = self.expected
        self._received_prior = self.packets_received
        lost_interval = max(0, expected_interval - received_interval)
        fraction = (
            (lost_interval << 8) // expected_interval
            if expected_interval > 0 else 0
        )
        dlsr = 0
        if self._last_sr_arrival is not None:
            dlsr = int((now_s - self._last_sr_arrival) * 65536)
        return ReportBlock(
            ssrc=self.ssrc,
            fraction_lost=min(255, fraction),
            cumulative_lost=self.cumulative_lost,
            highest_sequence=self.extended_highest_sequence,
            jitter=int(self._jitter),
            last_sr=self._last_sr_ntp_middle,
            delay_since_last_sr=dlsr,
        )


def rtt_from_report(block: ReportBlock, sr_send_time_middle: int,
                    rr_arrival_s: float) -> Optional[float]:
    """Sender-side RTT from a returned report block (RFC 3550 Sec. 6.4.1).

    ``rtt = arrival - LSR - DLSR`` in middle-32-bit NTP units; returns
    seconds, or None when the receiver has not yet seen an SR.
    """
    if block.last_sr == 0 or block.last_sr != sr_send_time_middle:
        return None
    arrival_middle = to_ntp_middle(rr_arrival_s)
    rtt_units = (arrival_middle - block.last_sr - block.delay_since_last_sr)
    rtt_units &= 0xFFFFFFFF
    return rtt_units / 65536.0
