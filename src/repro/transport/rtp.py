"""RTP (RFC 3550): header codec and media packetizer.

The paper inspects RTP Payload Type fields to check that FaceTime's 2D
fallback uses the same codecs as ordinary 2D FaceTime calls (Sec. 4.1).
Headers here are real RFC 3550 bytes — 12-byte fixed header, version 2 —
so captures can be parsed back by the analysis layer.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List

#: RTP protocol version (RFC 3550).
RTP_VERSION = 2

#: Size of the fixed RTP header with no CSRCs or extensions.
RTP_HEADER_BYTES = 12

#: Media payload budget per RTP packet (fits in the media MTU with headers).
RTP_MAX_PAYLOAD = 1188


@dataclass(frozen=True)
class PayloadType:
    """A (number, name, clock rate) payload-type registration."""

    number: int
    name: str
    clock_rate_hz: int

    def __post_init__(self) -> None:
        if not 0 <= self.number <= 127:
            raise ValueError(f"PT must fit in 7 bits, got {self.number}")


#: Dynamic payload types FaceTime uses for both 2D calls and the Vision Pro
#: 2D fallback (Sec. 4.1: "PTs ... remains consistent with that in
#: traditional 2D video calls").
FACETIME_VIDEO_PT = PayloadType(124, "H264/FaceTime", 90_000)
FACETIME_AUDIO_PT = PayloadType(104, "AAC-ELD/FaceTime", 48_000)

#: Payload types for the other three VCAs (dynamic range, per-app profiles).
ZOOM_VIDEO_PT = PayloadType(98, "H264/Zoom", 90_000)
WEBEX_VIDEO_PT = PayloadType(102, "H264/Webex", 90_000)
TEAMS_VIDEO_PT = PayloadType(122, "H264/Teams", 90_000)


@dataclass(frozen=True)
class RtpHeader:
    """The fixed RTP header (no CSRC list, no extension)."""

    payload_type: int
    sequence: int
    timestamp: int
    ssrc: int
    marker: bool = False

    def pack(self) -> bytes:
        """Serialize to the 12 RFC 3550 header bytes."""
        byte0 = (RTP_VERSION << 6)  # P=0, X=0, CC=0
        byte1 = (int(self.marker) << 7) | (self.payload_type & 0x7F)
        return struct.pack(
            "!BBHII",
            byte0,
            byte1,
            self.sequence & 0xFFFF,
            self.timestamp & 0xFFFFFFFF,
            self.ssrc & 0xFFFFFFFF,
        )

    @classmethod
    def parse(cls, data: bytes) -> "RtpHeader":
        """Parse the fixed header from the front of a datagram.

        Raises:
            ValueError: If the bytes are not a version-2 RTP header.
        """
        if len(data) < RTP_HEADER_BYTES:
            raise ValueError("datagram shorter than an RTP header")
        byte0, byte1, seq, ts, ssrc = struct.unpack("!BBHII", data[:RTP_HEADER_BYTES])
        if byte0 >> 6 != RTP_VERSION:
            raise ValueError(f"not RTP version 2 (first byte {byte0:#04x})")
        return cls(
            payload_type=byte1 & 0x7F,
            sequence=seq,
            timestamp=ts,
            ssrc=ssrc,
            marker=bool(byte1 >> 7),
        )


def looks_like_rtp(data: bytes) -> bool:
    """Heuristic a passive observer uses: version bits + sane PT."""
    if len(data) < RTP_HEADER_BYTES:
        return False
    return data[0] >> 6 == RTP_VERSION


class RtpPacketizer:
    """Split media frames into RTP packets for one stream (one SSRC)."""

    def __init__(self, payload_type: PayloadType, ssrc: int,
                 initial_sequence: int = 0) -> None:
        self.payload_type = payload_type
        self.ssrc = ssrc
        self._sequence = initial_sequence & 0xFFFF

    def packetize(self, frame: bytes, media_timestamp: int) -> List[bytes]:
        """Produce the RTP datagrams carrying one encoded frame.

        The final packet of the frame carries the marker bit, per the usual
        video packetization convention.
        """
        if not frame:
            raise ValueError("cannot packetize an empty frame")
        chunks = [
            frame[i:i + RTP_MAX_PAYLOAD] for i in range(0, len(frame), RTP_MAX_PAYLOAD)
        ]
        datagrams = []
        for index, chunk in enumerate(chunks):
            header = RtpHeader(
                payload_type=self.payload_type.number,
                sequence=self._sequence,
                timestamp=media_timestamp,
                ssrc=self.ssrc,
                marker=(index == len(chunks) - 1),
            )
            self._sequence = (self._sequence + 1) & 0xFFFF
            datagrams.append(header.pack() + chunk)
        return datagrams
