"""Videoconferencing application models and session orchestration.

Encodes the behaviours Sec. 4.1-4.2 of the paper reverse-engineers for
Apple FaceTime, Zoom, Cisco Webex, and Microsoft Teams on Vision Pro:

- persona kind per device mix (spatial only on all-Vision-Pro FaceTime),
- transport choice (FaceTime: QUIC iff all Vision Pro, else RTP with the
  2D-call payload types; others: always RTP),
- P2P fallback for two-party FaceTime/Zoom calls (except both-Vision-Pro
  FaceTime),
- initiator-nearest server selection, and
- SFU forwarding at the chosen server.
"""

from repro.vca.profiles import (
    VcaProfile,
    PersonaKind,
    Protocol,
    FACETIME,
    ZOOM,
    WEBEX,
    TEAMS,
    PROFILES,
)
from repro.vca.media import AudioSource, SemanticSource, VideoSource, MeshSource
from repro.vca.session import Participant, TelepresenceSession, SessionResult
from repro.vca.receiver import SemanticReceiver, PersonaAvailability
from repro.vca.media import LayeredSemanticSource
from repro.vca.stats import MediaStatsCollector, RtcpAgent, StreamStatistics
from repro.vca.dynamics import DynamicSession, DynamicSessionResult, MembershipEvent
from repro.vca.qoe import QoeFactors, score as qoe_score, meets_high_qoe_bar
from repro.vca.jitterbuffer import JitterBuffer, minimal_playout_delay_ms
from repro.vca.shareplay import SharedContentProfile, SharedContentSource
from repro.vca.planner import plan_session, check_feasibility, max_users_for_capacity

__all__ = [
    "VcaProfile",
    "PersonaKind",
    "Protocol",
    "FACETIME",
    "ZOOM",
    "WEBEX",
    "TEAMS",
    "PROFILES",
    "AudioSource",
    "SemanticSource",
    "VideoSource",
    "MeshSource",
    "Participant",
    "TelepresenceSession",
    "SessionResult",
    "SemanticReceiver",
    "PersonaAvailability",
    "LayeredSemanticSource",
    "MediaStatsCollector",
    "RtcpAgent",
    "StreamStatistics",
    "DynamicSession",
    "DynamicSessionResult",
    "MembershipEvent",
    "QoeFactors",
    "qoe_score",
    "meets_high_qoe_bar",
    "JitterBuffer",
    "minimal_playout_delay_ms",
    "SharedContentProfile",
    "SharedContentSource",
    "plan_session",
    "check_feasibility",
    "max_users_for_capacity",
]
