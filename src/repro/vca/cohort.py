"""Batched session cohorts: many telepresence sessions, one event loop.

Two layers, trading generality against speed:

* :class:`CohortRunner` — the compatibility facade.  It hosts N
  unmodified :class:`~repro.vca.session.TelepresenceSession` objects on
  one :class:`~repro.netsim.batch.BatchSimulator`, one lane each.  Every
  session observes *bit-identical* behaviour to a run on its own scalar
  :class:`~repro.netsim.engine.Simulator` (the golden differential suite
  enforces this), so existing experiments can batch without changing
  their numbers.  The win is architectural (one engine, one clock, one
  sorted arena amortized over the whole cohort) and moderate.
* :func:`sfu_cohort_downlink` — the struct-of-arrays fast path.  It
  advances an n-participant FaceTime SFU cohort *without per-packet
  Python callbacks*: uplink schedules are generated as arrays, access
  links served by the vectorized kernels in :mod:`repro.netsim.batch`,
  the SFU fan-out handled per ingress *block* (one O(1) step per
  uploaded packet instead of one event per copy), and per-observer
  throughput windows reduced with one ``bincount``.  This is what lets
  fig6 extend past the paper's 5-persona limit to fan-outs of
  hundreds per SFU in one process.

The fast path models the same network the event-driven simulator builds
for ``multi_user_testbed(n).session(FACETIME)`` — same QUIC wire sizes,
same per-user seeds, same AP/link constants, same initiator-nearest
server selection, same capture vantages — and is validated against it at
n = 2..5 by ``tests/test_batch_equivalence.py`` (documented fp
tolerance: vectorized prefix reductions associate float additions
differently than sequential busy-time accumulation, and equal-timestamp
ties across users are broken by user index rather than global event
sequence).  Beyond n = 5 it answers the what-if the paper could not
measure: *if* the spatial-persona cap were lifted, where does the SFU
saturate?  Deviations from the session path at scale:

* users cycle through the five default testbed cities;
* per-user semantic frame-size pools are exact for the first
  ``pool_library`` users and cycled for the rest;
* per-user access uplinks are served work-conserving (they run at
  ~0.7 Mbps against 300 Mbps — the drop-tail bound is unreachable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import calibration
from repro.analysis.stats import SummaryStats, summarize_samples
from repro.geo.regions import city
from repro.geo.servers import build_fleet
from repro.netsim.batch import (
    BatchSimulator,
    LaneSimulator,
    drop_tail_departures,
    fifo_departures,
)
from repro.netsim.packet import IPV4_HEADER_BYTES, UDP_HEADER_BYTES
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.vca.media import quic_connection_for
from repro.vca.profiles import PROFILES
from repro.vca.session import SessionResult, TelepresenceSession

#: City rotation of the cohort fast path — the same five cities
#: ``multi_user_testbed`` uses, cycled past five users.
COHORT_CITIES = ("san jose", "dallas", "washington", "chicago", "seattle")

#: IP + UDP framing added to every datagram payload.
_HEADER_BYTES = IPV4_HEADER_BYTES + UDP_HEADER_BYTES


class CohortRunner:
    """Hosts N independent sessions on one shared batch engine.

    Usage::

        runner = CohortRunner()
        for seed in seeds:
            runner.add(lambda sim, s=seed: testbed.session(profile, seed=s,
                                                           sim=sim))
        results = runner.run(duration_s)   # one List[SessionResult]

    Each factory receives the lane's engine view and must build its
    session on it; the runner advances the shared clock once and
    harvests every session.  Per-session numbers are bit-identical to
    scalar runs — the facade changes the execution engine, never the
    results.
    """

    def __init__(self) -> None:
        self.batch = BatchSimulator()
        self.sessions: List[TelepresenceSession] = []

    def add(
        self,
        factory: Callable[[LaneSimulator], TelepresenceSession],
    ) -> TelepresenceSession:
        """Add one session built by ``factory`` on a fresh lane."""
        lane = self.batch.add_lane()
        session = factory(lane)
        if session.sim is not lane:
            raise ValueError(
                "cohort session must be built on the lane it was given "
                "(pass the factory argument as the session's sim)"
            )
        self.sessions.append(session)
        return session

    def __len__(self) -> int:
        return len(self.sessions)

    def run(self, duration_s: float) -> List[SessionResult]:
        """Advance all sessions together, then collect each result."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        if not self.sessions:
            raise ValueError("cohort is empty; add sessions first")
        with obs_trace.span("vca.cohort.run", cat="session",
                            sim_clock=lambda: self.batch.now,
                            sessions=len(self.sessions)):
            self.batch.run(until=duration_s)
        obs_metrics.counter("vca.cohorts_run").inc()
        return [session.collect(duration_s) for session in self.sessions]


# ----------------------------------------------------------------------
# The vectorized SFU cohort fast path
# ----------------------------------------------------------------------


@dataclass
class SfuCohortResult:
    """Fleet-wide outcome of one n-participant SFU cohort.

    ``observer_windows_mbps`` holds per-client downlink throughput
    windows (the Fig. 6(c) observable) for the sampled observers;
    the remaining fields are fleet aggregates at the SFU.
    """

    n: int
    duration_s: float
    server_rate_bps: float
    observer_windows_mbps: Dict[int, List[float]]
    observer_late_fraction: Dict[int, float]
    offered_ingress_mbps: float
    accepted_ingress_mbps: float
    delivered_egress_mbps: float
    ingress_drop_rate: float
    egress_drop_rate: float
    #: Users refused at admission (empty unless ``admission_limit`` was
    #: given).  Shed users neither upload nor receive; their observer
    #: windows are empty.
    shed_users: Tuple[int, ...] = ()

    def downlink_summary(self) -> SummaryStats:
        """Box-plot summary over all observers' windows.

        Starved observers (drop-tail fan-out favours
        lexicographically-early destinations under saturation) may have
        produced no windows; they contribute a 0.0 sample each so the
        summary reflects the unfairness instead of hiding it.
        """
        samples: List[float] = []
        for windows in self.observer_windows_mbps.values():
            samples.extend(windows if windows else [0.0])
        return summarize_samples(samples)

    @property
    def saturated(self) -> bool:
        """Whether the SFU dropped traffic (ingress or fan-out)."""
        return self.ingress_drop_rate > 0.0 or self.egress_drop_rate > 0.0

    def observer_qoe_vector(self, observer: int,
                            one_way_delay_ms: float):
        """Multi-dimensional QoE of one sampled observer.

        The fast path has no per-frame receiver, so the dimensions map
        onto its aggregates: ``presence`` is the observer's delivered
        downlink share of the full (admitted − 1)-persona demand,
        ``comfort`` scores the frame rate implied by the late-frame
        fraction, ``interactivity`` the supplied one-way delay (see
        :func:`sfu_observer_one_way_ms`), and ``fidelity`` stays 1.0 —
        the fast path models no degradation ladder.  A user shed at
        admission scores presence 0 and comfort 0: there is nobody
        there to experience anything.
        """
        from repro.vca.qoe import QoeVector, delay_factor, frame_rate_factor

        interactivity = delay_factor(one_way_delay_ms)
        if observer in self.shed_users:
            return QoeVector(interactivity=interactivity, presence=0.0,
                             fidelity=1.0, comfort=0.0)
        if observer not in self.observer_windows_mbps:
            raise KeyError(f"user {observer} was not a sampled observer")
        admitted = self.n - len(self.shed_users)
        expected_mbps = calibration.SPATIAL_PERSONA_MBPS * (admitted - 1)
        windows = self.observer_windows_mbps[observer]
        mean_mbps = float(np.mean(windows)) if windows else 0.0
        presence = (min(1.0, mean_mbps / expected_mbps)
                    if expected_mbps > 0 else 0.0)
        late = self.observer_late_fraction.get(observer, 0.0)
        fps = float(calibration.TARGET_FPS) * max(0.0, 1.0 - late)
        return QoeVector(
            interactivity=interactivity,
            presence=presence,
            fidelity=1.0,
            comfort=frame_rate_factor(fps),
        )


def _quic_chunk_wire_sizes(frame_bytes: int) -> List[int]:
    """Wire sizes of the datagrams one protected frame produces."""
    from repro.transport.quic import QUIC_MAX_PAYLOAD, SHORT_HEADER_BYTES

    sizes = []
    offset = 0
    while offset < frame_bytes:
        chunk = min(QUIC_MAX_PAYLOAD, frame_bytes - offset)
        sizes.append(SHORT_HEADER_BYTES + chunk + _HEADER_BYTES)
        offset += chunk
    return sizes or [SHORT_HEADER_BYTES + _HEADER_BYTES]


def _semantic_pools(session_secret: bytes, seed: int, n: int,
                    pool_library: int) -> List[List[int]]:
    """Per-user semantic frame-length tables (bytes, pre-QUIC).

    Exact :class:`~repro.vca.media.SemanticSource` pools (same per-user
    seeds) for the first ``pool_library`` users; beyond that users cycle
    the library — the documented large-cohort approximation.
    """
    from repro.vca.media import SemanticSource

    library: List[List[int]] = []
    for index in range(min(n, pool_library)):
        source = SemanticSource(session_secret, seed=seed * 1000 + index)
        library.append([len(payload) for payload in source._pool])
    return [library[index % len(library)] for index in range(n)]


def _uplink_stream(duration_s: float, fps: float, pool: List[int],
                   handshake_wires: Tuple[int, int],
                   audio_wire: int) -> Tuple[np.ndarray, np.ndarray]:
    """One user's (send_time, wire_bytes) uplink schedule, in fire order.

    Reproduces the session's event times bit for bit: the handshake at
    t=0, audio ticks at ``k / 50``, semantic frames at
    ``2/fps + k * (1/fps)`` (the exact ``schedule_periodic``
    arithmetic), each frame expanded to its QUIC datagrams.  Ties at
    equal times keep the engine's firing order: handshake, then audio,
    then semantic.
    """
    # Audio: 50 packets/s from t = 0.
    pps = 50.0
    n_audio = int(np.floor(duration_s * pps)) + 1
    t_audio = np.arange(n_audio) * (1.0 / pps)
    t_audio = t_audio[t_audio <= duration_s]
    # Semantic frames: start = 2/fps, interval = 1/fps.
    base = 2.0 / fps
    interval = 1.0 / fps
    n_frames = int(np.floor((duration_s - base) * fps)) + 2
    t_frames = base + np.arange(max(n_frames, 0)) * interval
    t_frames = t_frames[t_frames <= duration_s]
    # Expand frames to datagrams.
    frame_sizes = [
        _quic_chunk_wire_sizes(pool[k % len(pool)])
        for k in range(len(t_frames))
    ]
    counts = np.array([len(s) for s in frame_sizes], dtype=np.int64)
    t_sem = np.repeat(t_frames, counts)
    w_sem = np.array(
        [w for sizes in frame_sizes for w in sizes], dtype=np.int64
    )

    times = np.concatenate([
        np.zeros(2), t_audio, t_sem,
    ])
    wires = np.concatenate([
        np.array(handshake_wires, dtype=np.int64),
        np.full(len(t_audio), audio_wire, dtype=np.int64),
        w_sem,
    ])
    prio = np.concatenate([
        np.zeros(2, dtype=np.int64),
        np.full(len(t_audio), 1, dtype=np.int64),
        np.full(len(t_sem), 2, dtype=np.int64),
    ])
    sub = np.arange(len(times))
    order = np.lexsort((sub, prio, times))
    return times[order], wires[order]


def sfu_cohort_downlink(
    n: int,
    duration_s: float,
    seed: int = 0,
    observers: Optional[Sequence[int]] = None,
    window_s: float = 1.0,
    skip_head_s: float = 1.0,
    pool_library: int = 16,
    playout_delay_ms: float = 20.0,
    server_gbps: Optional[float] = None,
    admission_limit: Optional[int] = None,
) -> SfuCohortResult:
    """Advance an n-participant FaceTime SFU cohort, fully vectorized.

    Models ``multi_user_testbed(n).session(FACETIME, seed=seed)`` —
    every user a Vision Pro uploading its spatial persona (QUIC
    handshake + 90 fps semantic frames + 50 pps audio) through its own
    300 Mbps AP to the initiator-nearest FaceTime SFU, which fans each
    packet out to the other n-1 participants through its shared AP.

    Args:
        n: Participants (≥ 2).  Not capped at the paper's 5-persona
            limit — that is the point.
        duration_s: Simulated seconds.
        seed: Session seed; per-user media seeds are derived exactly as
            the session does (``seed * 1000 + index``).
        observers: User indices whose downlink windows to compute
            (default: up to 4 users spread over the cohort).
        window_s / skip_head_s: Throughput-window parameters, same
            semantics as :func:`repro.analysis.throughput.
            throughput_windows_mbps`.
        pool_library: Exact per-user frame pools to build before
            cycling (cost: one LZMA pool per entry).
        playout_delay_ms: Fixed jitter-buffer delay used for the
            per-observer late-frame fraction.
        server_gbps: SFU attachment rate in Gbit/s.  ``None`` (default)
            keeps the testbed's 300 Mbps AP — the configuration the
            event-driven oracle uses, where quadratic fan-out saturates
            the relay near n ≈ 22.  The what-if runs pass a datacenter
            NIC rate (e.g. 10.0) to place the knee where a production
            SFU would see it.
        admission_limit: Server-side admission control: at most this
            many users are admitted (>= 2).  When the cohort exceeds
            the limit, the farthest users — highest one-way delay to
            the SFU, i.e. the sessions the delay-factor QoE objective
            already scores lowest, so shedding them costs the least
            regret — are refused deterministically (stable sort, index
            tie-break) and reported in ``shed_users``.  ``None``
            (default) admits everyone and is bit-identical to the
            pre-admission fast path.
    """
    if n < 2:
        raise ValueError("an SFU cohort needs at least two participants")
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    if observers is None:
        step = max(1, n // 4)
        observers = tuple(range(n))[::step][:4]
    facetime = PROFILES["FaceTime"]
    fps = float(calibration.TARGET_FPS)
    rate_bps = calibration.WIFI_AP_MBPS * 1e6
    server_rate_bps = (
        server_gbps * 1e9 if server_gbps is not None else rate_bps
    )
    queue_bytes = 512 * 1024
    # The testbed AP keeps its stock 512 KB buffer (oracle parity); a
    # datacenter NIC gets a 10 ms buffer so the instantaneous fan-out
    # bursts (every user ticks at the same display times) are absorbed
    # and the egress link stays work-conserving under saturation.
    server_queue_bytes = (
        queue_bytes if server_gbps is None
        else max(queue_bytes, int(server_rate_bps * 0.010 / 8.0))
    )
    import hashlib

    session_secret = hashlib.sha256(
        f"{facetime.name}-{seed}".encode()
    ).digest()

    # Geography: the session's city rotation and server selection.
    locations = [city(COHORT_CITIES[i % len(COHORT_CITIES)])
                 for i in range(n)]
    fleet = build_fleet(facetime.name)
    server = fleet.select_for_session(locations[0], locations)
    path = fleet.path_model
    up_delay = np.array([
        path.one_way_ms(loc, server.location) / 1000.0 for loc in locations
    ])
    down_delay = up_delay  # symmetric one-way model

    # Admission control: refuse the farthest (cheapest-regret) users.
    admitted = np.arange(n)
    shed_users: Tuple[int, ...] = ()
    if admission_limit is not None:
        if admission_limit < 2:
            raise ValueError("admission_limit must admit at least two users")
        if admission_limit < n:
            by_delay = np.argsort(up_delay, kind="stable")
            admitted = np.sort(by_delay[:admission_limit])
            shed_users = tuple(
                int(i) for i in np.sort(by_delay[admission_limit:])
            )
            obs_metrics.counter("vca.cohort.admission_shed").inc(
                len(shed_users)
            )
    # Original-index -> admitted-local-index map (-1 = shed).
    local = np.full(n, -1, dtype=np.int64)
    local[admitted] = np.arange(len(admitted))

    # Exact wire sizes (address-independent).
    conn = quic_connection_for("10.0.0.2", session_secret)
    handshake_wires = (
        len(conn.initial_packet()) + _HEADER_BYTES,
        len(conn.handshake_packet()) + _HEADER_BYTES,
    )
    audio_payload = max(16, int(
        facetime.audio_bitrate_kbps * 1000 / 8 / 50
    ))
    audio_wire = _quic_chunk_wire_sizes(audio_payload)[0]

    pools = _semantic_pools(session_secret, seed, n, pool_library)

    # ------------------------------------------------------------------
    # Uplinks: per-user schedule -> work-conserving AP service.
    # ------------------------------------------------------------------
    all_times: List[np.ndarray] = []
    all_wires: List[np.ndarray] = []
    all_src: List[np.ndarray] = []
    all_send: List[np.ndarray] = []
    for index in admitted.tolist():
        t_send, wires = _uplink_stream(
            duration_s, fps, pools[index], handshake_wires, audio_wire
        )
        dep = fifo_departures(t_send, wires * (8.0 / rate_bps))
        all_times.append(dep + up_delay[index])
        all_wires.append(wires)
        all_src.append(np.full(len(wires), index, dtype=np.int64))
        all_send.append(t_send)
    arrival = np.concatenate(all_times)
    wire = np.concatenate(all_wires)
    src = np.concatenate(all_src)
    send = np.concatenate(all_send)
    order = np.lexsort((src, arrival))
    arrival, wire, src, send = (arrival[order], wire[order], src[order],
                                send[order])
    in_window = arrival <= duration_s
    arrival, wire, src, send = (arrival[in_window], wire[in_window],
                                src[in_window], send[in_window])
    offered_bytes = float(wire.sum())

    # ------------------------------------------------------------------
    # SFU ingress: the shared AP downlink, exact drop-tail.
    # ------------------------------------------------------------------
    dep_in, accepted = drop_tail_departures(
        arrival, wire, server_rate_bps, server_queue_bytes
    )
    ingress_offered = len(arrival)
    ingress_accepted = int(accepted.sum())
    dep_in = dep_in[accepted]
    wire_in = wire[accepted]
    src_in = src[accepted]
    accepted_bytes = float(wire_in.sum())

    # ------------------------------------------------------------------
    # SFU egress: block fan-out, one O(1) step per ingress packet.
    # Copies of one packet are offered back to back at one instant, so
    # the accepted count is a single headroom division.
    # ------------------------------------------------------------------
    fanout = len(admitted) - 1
    byte_rate = server_rate_bps / 8.0
    start_l: List[float] = []
    k_l: List[int] = []
    busy = 0.0
    dep_list = dep_in.tolist()
    wire_list = wire_in.tolist()
    for i in range(len(dep_list)):
        t = dep_list[i]
        w = wire_list[i]
        backlog = int((busy - t) * byte_rate) if busy > t else 0
        k = (server_queue_bytes - backlog) // w
        if k < 0:
            k = 0
        elif k > fanout:
            k = fanout
        start = t if t > busy else busy
        busy = start + k * (w * 8.0 / server_rate_bps)
        start_l.append(start)
        k_l.append(k)
    start_arr = np.array(start_l)
    k_arr = np.array(k_l, dtype=np.int64)
    copies_offered = len(dep_list) * fanout
    copies_accepted = int(k_arr.sum())
    egress_bytes = float((k_arr * wire_in).sum())

    # ------------------------------------------------------------------
    # Observer downlinks: capture vantage is the core arrival (before
    # the receiver's AP), exactly like the event-driven network.
    # ------------------------------------------------------------------
    # Fan-out destination order ranks the *admitted* addresses only;
    # with everyone admitted this is the original full-cohort ranking.
    addresses = [f"10.0.{i}.2" for i in admitted.tolist()]
    rank = np.empty(len(admitted), dtype=np.int64)
    rank[np.array([addresses.index(a) for a in sorted(addresses)])] = (
        np.arange(len(admitted))
    )
    ser_in = wire_in * (8.0 / server_rate_bps)
    src_rank = rank[local[src_in]]
    observer_windows: Dict[int, List[float]] = {}
    observer_late: Dict[int, float] = {}
    from repro.vca.jitterbuffer import JitterBuffer

    # Original send timestamps rode along through the pipeline; the
    # jitter buffer needs (send, arrival) pairs per observer.
    send_in = send[accepted]
    for obs in observers:
        if not 0 <= obs < n:
            raise IndexError(f"observer {obs} out of range for n={n}")
        if local[obs] < 0:
            # Refused at admission: the SFU never sends toward this user.
            observer_windows[obs] = []
            observer_late[obs] = 0.0
            continue
        position = rank[local[obs]] - (src_rank < rank[local[obs]])
        mine = src_in != obs
        got = mine & (position < k_arr)
        dep_copy = start_arr[got] + (position[got] + 1) * ser_in[got]
        t_arrive = dep_copy + down_delay[obs]
        if len(t_arrive) == 0:
            observer_windows[obs] = []
            observer_late[obs] = 0.0
            continue
        t0 = float(t_arrive.min()) + skip_head_s
        t_end = float(t_arrive.max())
        n_windows = int((t_end - t0) / window_s) if t_end > t0 else 0
        if n_windows < 1:
            observer_windows[obs] = []
        else:
            rel = t_arrive - t0
            idx = (rel / window_s).astype(np.int64)
            valid = (rel >= 0) & (idx < n_windows)
            weights = wire_in[got].astype(np.float64)[valid]
            sums = np.bincount(idx[valid], weights=weights,
                               minlength=n_windows)
            observer_windows[obs] = list(sums * 8.0 / window_s / 1e6)
        report = JitterBuffer(playout_delay_ms).play_batch(
            send_in[got], t_arrive,
            np.zeros(len(t_arrive), dtype=np.int64), 1,
        )[0]
        observer_late[obs] = report.late_fraction

    scale = 8.0 / duration_s / 1e6
    obs_metrics.counter("vca.cohort.fast_path_runs").inc()
    obs_metrics.gauge("vca.cohort.max_fanout").set_max(n)
    return SfuCohortResult(
        n=n,
        duration_s=duration_s,
        server_rate_bps=server_rate_bps,
        observer_windows_mbps=observer_windows,
        observer_late_fraction=observer_late,
        offered_ingress_mbps=offered_bytes * scale,
        accepted_ingress_mbps=accepted_bytes * scale,
        delivered_egress_mbps=egress_bytes * scale,
        ingress_drop_rate=(
            1.0 - ingress_accepted / ingress_offered if ingress_offered
            else 0.0
        ),
        egress_drop_rate=(
            1.0 - copies_accepted / copies_offered if copies_offered
            else 0.0
        ),
        shed_users=shed_users,
    )


def sfu_observer_one_way_ms(n: int) -> np.ndarray:
    """Per-user worst-case conversational one-way delay of the cohort.

    The fast path's geography, reused for QoE scoring: user ``i``'s
    interactive path to the farthest other participant runs sender
    uplink → SFU → own downlink, so the entry is ``max_j(up_j) +
    down_i`` under the symmetric one-way model, with the same city
    rotation and initiator-nearest server selection as
    :func:`sfu_cohort_downlink`.
    """
    if n < 2:
        raise ValueError("an SFU cohort needs at least two participants")
    locations = [city(COHORT_CITIES[i % len(COHORT_CITIES)])
                 for i in range(n)]
    fleet = build_fleet(PROFILES["FaceTime"].name)
    server = fleet.select_for_session(locations[0], locations)
    path = fleet.path_model
    up_ms = np.array([
        path.one_way_ms(loc, server.location) for loc in locations
    ])
    return up_ms.max() + up_ms  # symmetric: down_i == up_i


__all__ = [
    "CohortRunner",
    "SfuCohortResult",
    "sfu_cohort_downlink",
    "sfu_observer_one_way_ms",
    "COHORT_CITIES",
]
