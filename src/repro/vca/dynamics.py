"""Mid-session dynamics: participants joining and leaving.

The paper's sessions have fixed membership, but its Fig. 6(c) mechanism —
the SFU forwards every active stream to every other participant — implies
each join/leave moves every client's downlink by one stream's worth.
:class:`DynamicSession` schedules joins and leaves on the simulated
testbed and exposes the per-window downlink so the steps are measurable.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import calibration
from repro.geo.regions import city
from repro.netsim.capture import Direction, PacketCapture
from repro.netsim.engine import Simulator
from repro.netsim.network import Network
from repro.netsim.node import Host
from repro.netsim.sfu import SelectiveForwardingUnit
from repro.geo.servers import build_fleet
from repro.vca.media import MEDIA_PORT, SemanticSource
from repro.vca.profiles import VcaProfile


@dataclass(frozen=True)
class MembershipEvent:
    """One scheduled join or leave."""

    time_s: float
    user_id: str
    join: bool


@dataclass
class DynamicSessionResult:
    """Capture + event log of a dynamic session."""

    observer_capture: PacketCapture
    events: List[MembershipEvent]
    duration_s: float

    def downlink_mbps_between(self, start_s: float, end_s: float) -> float:
        """Observer downlink throughput over [start, end)."""
        if end_s <= start_s:
            raise ValueError("empty interval")
        total = sum(
            r.wire_bytes
            for r in self.observer_capture.filter(direction=Direction.DOWNLINK)
            if start_s <= r.timestamp < end_s
        )
        return total * 8.0 / (end_s - start_s) / 1e6


class DynamicSession:
    """A spatial FaceTime session whose membership changes over time.

    The observer (``U1``) stays for the whole session; other participants
    join and leave per the schedule.  The paper's five-spatial-persona cap
    is enforced at every instant.

    Args:
        profile: Must support spatial personas (FaceTime).
        schedule: (time_s, user_id, join) triples; users must join before
            they leave and the observer cannot leave.
        seed: Media seed.
    """

    OBSERVER = "U1"
    _CITIES = ("san jose", "dallas", "washington", "chicago", "seattle",
               "new york", "miami", "kansas city")

    def __init__(self, profile: VcaProfile,
                 schedule: Sequence[Tuple[float, str, bool]],
                 seed: int = 0) -> None:
        if not profile.supports_spatial:
            raise ValueError("dynamic sessions model spatial FaceTime calls")
        self.profile = profile
        self.seed = seed
        self.events = [MembershipEvent(*e) for e in schedule]
        self.events.sort(key=lambda e: e.time_s)
        self._validate_schedule()
        self.sim = Simulator()
        self.network = Network(self.sim)
        self.secret = hashlib.sha256(f"dyn-{seed}".encode()).digest()
        self._hosts: Dict[str, Host] = {}
        self._build()

    def _validate_schedule(self) -> None:
        active = {self.OBSERVER}
        for event in self.events:
            if event.user_id == self.OBSERVER:
                raise ValueError("the observer cannot join or leave")
            if event.join:
                if event.user_id in active:
                    raise ValueError(f"{event.user_id} joined twice")
                active.add(event.user_id)
            else:
                if event.user_id not in active:
                    raise ValueError(f"{event.user_id} left before joining")
                active.discard(event.user_id)
            if len(active) > calibration.MAX_SPATIAL_PERSONAS:
                raise ValueError(
                    "schedule exceeds the five-spatial-persona cap"
                )

    def _build(self) -> None:
        user_ids = [self.OBSERVER] + sorted(
            {e.user_id for e in self.events}
        )
        if len(user_ids) > len(self._CITIES):
            raise ValueError("too many distinct users for the city pool")
        fleet = build_fleet(self.profile.name, self.network.path_model)
        observer_city = city(self._CITIES[0])
        server = fleet.nearest(observer_city)
        self.sfu = SelectiveForwardingUnit(
            server.address, server.location, name="dynamic-sfu"
        )
        self.network.attach(self.sfu)
        for index, user_id in enumerate(user_ids):
            host = Host(f"10.1.{index}.2", city(self._CITIES[index]),
                        name=user_id)
            self.network.attach(host)
            host.bind(MEDIA_PORT, lambda p: None)
            self._hosts[user_id] = host
        self.capture = self.network.start_capture(
            self._hosts[self.OBSERVER].address
        )

    def _activate(self, user_id: str, start_s: float,
                  until_s: Optional[float]) -> None:
        host = self._hosts[user_id]
        self.sfu.register(host.address, MEDIA_PORT)
        # sha256, not hash(): str hashing is salted per process, which
        # would change media payloads between runs (PYTHONHASHSEED).
        user_tag = int.from_bytes(
            hashlib.sha256(user_id.encode()).digest()[:4], "little"
        )
        source = SemanticSource(
            self.secret, seed=self.seed * 100 + user_tag % 97
        )
        source.attach(
            self.sim, host, self.sfu.address,
            SelectiveForwardingUnit.MEDIA_PORT, until=until_s,
        )
        del start_s  # sources are attached at activation time

    def run(self, duration_s: float) -> DynamicSessionResult:
        """Run the scheduled session."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        # The observer streams for the entire session.
        self._activate(self.OBSERVER, 0.0, duration_s)
        leave_times = {
            e.user_id: e.time_s for e in self.events if not e.join
        }
        for event in self.events:
            if event.join:
                until = leave_times.get(event.user_id, duration_s)
                self.sim.schedule_at(
                    event.time_s,
                    lambda uid=event.user_id, t=event.time_s, u=until:
                        self._activate(uid, t, u),
                )
            else:
                self.sim.schedule_at(
                    event.time_s,
                    lambda uid=event.user_id: self.sfu.unregister(
                        self._hosts[uid].address
                    ),
                )
        self.sim.run(until=duration_s)
        return DynamicSessionResult(self.capture, self.events, duration_s)
