"""Receiver-side jitter buffer (playout delay) model.

Media receivers trade latency for smoothness: frames are held for a fixed
playout delay so network jitter does not starve the renderer.  The spatial
persona pipeline has an unusually easy job here — one small packet per
frame at 90 Hz — but the same machinery explains how much delay a given
jitter distribution costs, which feeds the display-latency budget of
Sec. 4.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro import calibration


@dataclass(frozen=True)
class PlayoutReport:
    """Outcome of playing a stream through a fixed playout delay."""

    playout_delay_ms: float
    frames: int
    late_frames: int
    mean_wait_ms: float

    @property
    def late_fraction(self) -> float:
        """Fraction of frames that missed their playout slot."""
        return self.late_frames / self.frames if self.frames else 0.0


class JitterBuffer:
    """Fixed-playout-delay buffer over (send, arrival) timestamp pairs.

    Frame ``i`` is scheduled for playout at ``send_i + delay``; it is late
    when it arrives after that instant.  ``mean_wait_ms`` is how long
    on-time frames sat in the buffer — the latency cost of the smoothing.
    """

    def __init__(self, playout_delay_ms: float) -> None:
        if playout_delay_ms < 0:
            raise ValueError("playout delay cannot be negative")
        self.playout_delay_ms = playout_delay_ms

    def play(self, timestamps: Sequence[Tuple[float, float]]) -> PlayoutReport:
        """Run the stream; timestamps are (send_s, arrival_s) pairs.

        Raises:
            ValueError: On an empty stream.
        """
        if not timestamps:
            raise ValueError("no frames to play")
        late = 0
        waits: List[float] = []
        delay_s = self.playout_delay_ms / 1000.0
        for send_s, arrival_s in timestamps:
            playout_s = send_s + delay_s
            if arrival_s > playout_s:
                late += 1
            else:
                waits.append((playout_s - arrival_s) * 1000.0)
        return PlayoutReport(
            playout_delay_ms=self.playout_delay_ms,
            frames=len(timestamps),
            late_frames=late,
            mean_wait_ms=float(np.mean(waits)) if waits else 0.0,
        )


def minimal_playout_delay_ms(
    timestamps: Sequence[Tuple[float, float]],
    late_budget: float = 0.01,
    resolution_ms: float = 0.5,
    max_delay_ms: float = 500.0,
) -> float:
    """Smallest playout delay keeping lateness within ``late_budget``.

    This is the steady-state answer an adaptive jitter buffer converges
    to; it equals (approximately) the ``1 - late_budget`` quantile of the
    one-way delay distribution.

    Raises:
        ValueError: If even ``max_delay_ms`` cannot meet the budget.
    """
    if not 0.0 <= late_budget < 1.0:
        raise ValueError("late budget must be in [0, 1)")
    delays_ms = np.arange(0.0, max_delay_ms + resolution_ms, resolution_ms)
    one_way = np.array([a - s for s, a in timestamps]) * 1000.0
    for delay in delays_ms:
        if float(np.mean(one_way > delay)) <= late_budget:
            return float(delay)
    raise ValueError(
        f"cannot meet a {late_budget:.1%} late budget within "
        f"{max_delay_ms} ms"
    )


def persona_playout_budget_ms(network_jitter_std_ms: float,
                              base_one_way_ms: float,
                              late_budget: float = 0.01) -> float:
    """Analytic playout delay for Gaussian jitter (sanity companion).

    The ``1 - late_budget`` Gaussian quantile above the base one-way
    delay; with the display pipeline's own frame of slack this stays well
    inside the < 16 ms display-latency difference bound of Sec. 4.3 for
    the jitter the testbed exhibits.
    """
    from scipy.stats import norm

    if network_jitter_std_ms < 0:
        raise ValueError("jitter std cannot be negative")
    quantile = norm.ppf(1.0 - late_budget)
    return base_one_way_ms + quantile * network_jitter_std_ms


#: One display frame of slack at the 90 FPS target.
FRAME_SLACK_MS = calibration.FRAME_DEADLINE_MS
