"""Receiver-side jitter buffer (playout delay) model.

Media receivers trade latency for smoothness: frames are held for a fixed
playout delay so network jitter does not starve the renderer.  The spatial
persona pipeline has an unusually easy job here — one small packet per
frame at 90 Hz — but the same machinery explains how much delay a given
jitter distribution costs, which feeds the display-latency budget of
Sec. 4.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro import calibration
from repro.obs import metrics as obs_metrics


@dataclass(frozen=True)
class PlayoutReport:
    """Outcome of playing a stream through a fixed playout delay."""

    playout_delay_ms: float
    frames: int
    late_frames: int
    mean_wait_ms: float

    @property
    def late_fraction(self) -> float:
        """Fraction of frames that missed their playout slot."""
        return self.late_frames / self.frames if self.frames else 0.0


class JitterBuffer:
    """Fixed-playout-delay buffer over (send, arrival) timestamp pairs.

    Frame ``i`` is scheduled for playout at ``send_i + delay``; it is late
    when it arrives after that instant.  ``mean_wait_ms`` is how long
    on-time frames sat in the buffer — the latency cost of the smoothing.
    """

    def __init__(self, playout_delay_ms: float) -> None:
        if playout_delay_ms < 0:
            raise ValueError("playout delay cannot be negative")
        self.playout_delay_ms = playout_delay_ms

    def play(self, timestamps: Sequence[Tuple[float, float]]) -> PlayoutReport:
        """Run the stream; timestamps are (send_s, arrival_s) pairs.

        Raises:
            ValueError: On an empty stream.
        """
        if not timestamps:
            raise ValueError("no frames to play")
        late = 0
        waits: List[float] = []
        delay_s = self.playout_delay_ms / 1000.0
        for send_s, arrival_s in timestamps:
            playout_s = send_s + delay_s
            if arrival_s > playout_s:
                late += 1
            else:
                waits.append((playout_s - arrival_s) * 1000.0)
        return PlayoutReport(
            playout_delay_ms=self.playout_delay_ms,
            frames=len(timestamps),
            late_frames=late,
            mean_wait_ms=float(np.mean(waits)) if waits else 0.0,
        )

    def play_batch(
        self,
        send_s: np.ndarray,
        arrival_s: np.ndarray,
        lanes: np.ndarray,
        n_lanes: int,
    ) -> List[PlayoutReport]:
        """Play many lanes' streams at once, state held as arrays.

        The cohort engine's vectorized counterpart of :meth:`play`:
        ``lanes[i]`` says which session frame ``i`` belongs to, and all
        lanes are scored with axis-wise reductions (one ``bincount`` per
        statistic) instead of a per-frame Python loop.  For every lane
        the report equals :meth:`play` on that lane's (send, arrival)
        pairs — the batch-equivalence suite holds the two paths
        together.

        Raises:
            ValueError: On an empty cohort, any empty lane (matching
                the scalar refusal to play an empty stream), or a lane
                index outside ``[0, n_lanes)`` — a frame routed to a
                nonexistent session is a caller bug, not a droppable
                frame.
        """
        if n_lanes < 1:
            raise ValueError("no lanes to play")
        send = np.asarray(send_s, dtype=np.float64)
        arrival = np.asarray(arrival_s, dtype=np.float64)
        lane = np.asarray(lanes, dtype=np.int64)
        if lane.size and ((lane < 0) | (lane >= n_lanes)).any():
            raise ValueError(
                f"lane indices must be in [0, {n_lanes}); "
                f"got range [{int(lane.min())}, {int(lane.max())}]"
            )
        frames = np.bincount(lane, minlength=n_lanes)
        if (frames == 0).any():
            raise ValueError("no frames to play")
        delay_s = self.playout_delay_ms / 1000.0
        playout = send + delay_s
        late_mask = arrival > playout
        late = np.bincount(lane[late_mask], minlength=n_lanes)
        wait_ms = np.where(late_mask, 0.0, (playout - arrival) * 1000.0)
        wait_sums = np.bincount(lane, weights=wait_ms, minlength=n_lanes)
        on_time = frames - late
        mean_wait = np.divide(
            wait_sums, on_time,
            out=np.zeros(n_lanes), where=on_time > 0,
        )
        return [
            PlayoutReport(
                playout_delay_ms=self.playout_delay_ms,
                frames=int(frames[i]),
                late_frames=int(late[i]),
                mean_wait_ms=float(mean_wait[i]),
            )
            for i in range(n_lanes)
        ]


class AdaptiveJitterBuffer:
    """Online playout-delay controller (RFC 3550-style estimator).

    Tracks an EWMA of the one-way delay and its mean absolute deviation
    and re-targets the playout delay to ``mean + safety * deviation`` on
    every arrival — the classic adaptive jitter buffer.  Under a jitter
    burst the buffer grows within a few frames and drains again once the
    burst clears; the timeline records that trajectory for the resilience
    experiment.

    A frame is late when it arrives after its playout slot under the delay
    in force *before* the arrival updated the estimate (the buffer cannot
    retroactively re-schedule).
    """

    def __init__(
        self,
        initial_delay_ms: float = 20.0,
        gain: float = 1.0 / 16.0,
        safety: float = 4.0,
        min_delay_ms: float = 5.0,
        max_delay_ms: float = 500.0,
    ) -> None:
        if initial_delay_ms < 0:
            raise ValueError("playout delay cannot be negative")
        if not 0.0 < gain <= 1.0:
            raise ValueError("gain must be in (0, 1]")
        if min_delay_ms < 0 or max_delay_ms < min_delay_ms:
            raise ValueError("need 0 <= min_delay <= max_delay")
        self.gain = gain
        self.safety = safety
        self.min_delay_ms = min_delay_ms
        self.max_delay_ms = max_delay_ms
        self.playout_delay_ms = float(
            np.clip(initial_delay_ms, min_delay_ms, max_delay_ms)
        )
        self._mean_ms: float = 0.0
        self._deviation_ms: float = 0.0
        self._primed = False
        self.frames = 0
        self.late_frames = 0
        #: ``(arrival_s, playout_delay_ms)`` after each arrival.
        self.timeline: List[Tuple[float, float]] = []
        # Stream counters fetched once; observe() is a per-frame path.
        self._m_frames = obs_metrics.counter("vca.jitterbuffer.frames")
        self._m_late = obs_metrics.counter("vca.jitterbuffer.late_frames")
        self._m_delay = obs_metrics.histogram("vca.jitterbuffer.delay_ms")

    def observe(self, send_s: float, arrival_s: float) -> float:
        """Feed one frame's (send, arrival) pair; returns the new delay.

        Raises:
            ValueError: If the frame arrives before it was sent.
        """
        one_way_ms = (arrival_s - send_s) * 1000.0
        if one_way_ms < 0:
            raise ValueError("arrival precedes send")
        self.frames += 1
        self._m_frames.inc()
        if arrival_s > send_s + self.playout_delay_ms / 1000.0:
            self.late_frames += 1
            self._m_late.inc()
        if not self._primed:
            self._mean_ms = one_way_ms
            self._primed = True
        else:
            error = one_way_ms - self._mean_ms
            self._mean_ms += self.gain * error
            self._deviation_ms += self.gain * (abs(error) - self._deviation_ms)
        self.playout_delay_ms = float(np.clip(
            self._mean_ms + self.safety * self._deviation_ms,
            self.min_delay_ms, self.max_delay_ms,
        ))
        self.timeline.append((arrival_s, self.playout_delay_ms))
        self._m_delay.observe(self.playout_delay_ms)
        return self.playout_delay_ms

    @property
    def late_fraction(self) -> float:
        """Fraction of frames that missed their playout slot."""
        return self.late_frames / self.frames if self.frames else 0.0

    @property
    def peak_delay_ms(self) -> float:
        """Largest playout delay the controller reached."""
        return max((d for _t, d in self.timeline),
                   default=self.playout_delay_ms)


def minimal_playout_delay_ms(
    timestamps: Sequence[Tuple[float, float]],
    late_budget: float = 0.01,
    resolution_ms: float = 0.5,
    max_delay_ms: float = 500.0,
) -> float:
    """Smallest playout delay keeping lateness within ``late_budget``.

    This is the steady-state answer an adaptive jitter buffer converges
    to; it equals (approximately) the ``1 - late_budget`` quantile of the
    one-way delay distribution.

    Raises:
        ValueError: If even ``max_delay_ms`` cannot meet the budget.
    """
    if not 0.0 <= late_budget < 1.0:
        raise ValueError("late budget must be in [0, 1)")
    delays_ms = np.arange(0.0, max_delay_ms + resolution_ms, resolution_ms)
    one_way = np.array([a - s for s, a in timestamps]) * 1000.0
    cannot_meet = ValueError(
        f"cannot meet a {late_budget:.1%} late budget within "
        f"{max_delay_ms} ms"
    )
    n = one_way.size
    if n == 0:
        raise cannot_meet
    # Largest late count m with m/n <= late_budget under the exact float
    # comparison the grid scan used (np.mean == count/n); floor(budget*n)
    # can land one off either way (e.g. budget=1/3, n=3 rounds to 0.999…).
    m = int(np.floor(late_budget * n))
    while m + 1 < n and (m + 1) / n <= late_budget:
        m += 1
    while m > 0 and m / n > late_budget:
        m -= 1
    # Any delay >= the (n - m)-th smallest one-way sample leaves at most
    # m frames strictly late; anything smaller leaves at least m + 1.
    quantile = np.partition(one_way, n - m - 1)[n - m - 1]
    index = int(np.searchsorted(delays_ms, quantile, side="left"))
    if index >= delays_ms.size:
        raise cannot_meet
    return float(delays_ms[index])


def persona_playout_budget_ms(network_jitter_std_ms: float,
                              base_one_way_ms: float,
                              late_budget: float = 0.01) -> float:
    """Analytic playout delay for Gaussian jitter (sanity companion).

    The ``1 - late_budget`` Gaussian quantile above the base one-way
    delay; with the display pipeline's own frame of slack this stays well
    inside the < 16 ms display-latency difference bound of Sec. 4.3 for
    the jitter the testbed exhibits.
    """
    from scipy.stats import norm

    if network_jitter_std_ms < 0:
        raise ValueError("jitter std cannot be negative")
    quantile = norm.ppf(1.0 - late_budget)
    return base_one_way_ms + quantile * network_jitter_std_ms


#: One display frame of slack at the 90 FPS target.
FRAME_SLACK_MS = calibration.FRAME_DEADLINE_MS
