"""Media sources: 2D video, semantic keypoints, raw mesh streams, audio.

Each source attaches to a host in the simulated network and schedules its
frames; the wire throughput they produce is what the Fig. 4 capture
analysis measures at the APs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro import calibration
from repro.keypoints.codec import SemanticCodec
from repro.keypoints.motion import MotionSynthesizer
from repro.mesh.codec import DracoLikeCodec
from repro.mesh.generate import sketchfab_head_set
from repro.mesh.model import TriangleMesh
from repro.netsim.engine import Simulator
from repro.netsim.node import Host
from repro.netsim.packet import IPPROTO_UDP, Packet
from repro.transport.quic import CONNECTION_ID_BYTES, QuicConnection
from repro.transport.rtp import PayloadType, RtpPacketizer

#: Default media port clients listen on.
MEDIA_PORT = 40000

#: Source port audio streams send from (video/semantic use MEDIA_PORT), so
#: a passive observer can separate the flows by 5-tuple like Wireshark.
AUDIO_SRC_PORT = 40002

#: Overhead-corrected payload fraction: RTP(12)+UDP(8)+IP(20) on ~1.2 KB.
_PAYLOAD_FRACTION = 1188.0 / (1188.0 + 40.0)


def quic_connection_for(sender_address: str, session_secret: bytes) -> QuicConnection:
    """Deterministic per-sender QUIC connection (dcid from the address)."""
    dcid = hashlib.sha256(sender_address.encode()).digest()[:CONNECTION_ID_BYTES]
    return QuicConnection(dcid, session_secret)


@dataclass
class MediaTarget:
    """Where a source sends: the SFU or the P2P peer.

    Mutable on purpose: sources resolve ``target.address`` at every frame,
    so the resilience layer can retarget live streams mid-session (server
    failover) by mutating one shared instance instead of rebuilding every
    source.
    """

    address: str
    port: int


#: Backward-compatible private alias (pre-failover code used ``_Target``).
_Target = MediaTarget


class VideoSource:
    """A 2D persona video stream (H.264-style GoP size pattern over RTP).

    Frame sizes follow an I/P group-of-pictures pattern with lognormal
    content jitter, normalized so the *wire* throughput (including RTP,
    UDP, and IP headers) matches ``target_mbps``.
    """

    GOP_FRAMES = 30
    I_FRAME_WEIGHT = 3.0

    def __init__(
        self,
        payload_type: PayloadType,
        target_mbps: float,
        fps: int = 30,
        seed: int = 0,
        jitter_sigma: float = 0.15,
        rate_scale: Optional[Callable[[], float]] = None,
    ) -> None:
        if target_mbps <= 0:
            raise ValueError("target bitrate must be positive")
        if fps <= 0:
            raise ValueError("fps must be positive")
        self.payload_type = payload_type
        self.target_mbps = target_mbps
        self.fps = fps
        self.jitter_sigma = jitter_sigma
        self._rate_scale = rate_scale
        self._rng = np.random.default_rng(seed)
        self.ssrc = int(self._rng.integers(1, 2**32))
        self._packetizer = RtpPacketizer(payload_type, ssrc=self.ssrc)
        self._frame_index = 0
        self.packets_sent = 0
        self.payload_bytes_sent = 0
        # Mean payload bytes per frame after header overhead.
        wire_frame_bytes = target_mbps * 1e6 / 8.0 / fps
        self._mean_payload = wire_frame_bytes * _PAYLOAD_FRACTION
        # P-frame weight making the GoP average exactly 1.
        self._p_weight = (
            (self.GOP_FRAMES - self.I_FRAME_WEIGHT) / (self.GOP_FRAMES - 1)
        )

    def next_frame_payloads(self, scale: float = 1.0) -> List[bytes]:
        """Encoded RTP datagrams of the next video frame.

        ``scale`` multiplies the frame's payload budget — the degradation
        ladder's 2D analog (reduced-resolution encodes under disturbance).
        """
        in_gop = self._frame_index % self.GOP_FRAMES
        weight = self.I_FRAME_WEIGHT if in_gop == 0 else self._p_weight
        jitter = float(self._rng.lognormal(0.0, self.jitter_sigma))
        jitter /= float(np.exp(self.jitter_sigma**2 / 2.0))  # unit mean
        size = max(64, int(self._mean_payload * weight * jitter * scale))
        frame = bytes(self._rng.integers(0, 256, size, dtype=np.uint8))
        timestamp = int(self._frame_index * 90_000 / self.fps)
        self._frame_index += 1
        datagrams = self._packetizer.packetize(frame, timestamp)
        self.packets_sent += len(datagrams)
        self.payload_bytes_sent += sum(len(d) for d in datagrams)
        return datagrams

    @property
    def current_rtp_timestamp(self) -> int:
        """RTP timestamp of the next frame (90 kHz video clock)."""
        return int(self._frame_index * 90_000 / self.fps)

    def attach(self, sim: Simulator, host: Host, target_address: str,
               target_port: int = MEDIA_PORT, until: Optional[float] = None,
               meta_extra: Optional[dict] = None,
               target: Optional[MediaTarget] = None) -> None:
        """Schedule the stream on ``sim`` from ``host`` to the target.

        Pass a shared ``target`` to allow mid-session retargeting.
        """
        target = target or MediaTarget(target_address, target_port)

        def send_frame() -> None:
            scale = 1.0 if self._rate_scale is None else float(self._rate_scale())
            if scale <= 0.0:
                return  # audio-only rung: the video frame is not encoded
            index = self._frame_index
            for payload in self.next_frame_payloads(scale):
                packet = Packet(
                    src=host.address, dst=target.address,
                    src_port=MEDIA_PORT, dst_port=target.port,
                    protocol=IPPROTO_UDP, payload=payload,
                    meta={"kind": "video", "frame": index,
                          "origin": host.address, **(meta_extra or {})},
                )
                host.send(packet)

        sim.schedule_every(1.0 / self.fps, send_frame, until=until)


class SemanticSource:
    """The spatial persona stream: LZMA keypoint frames over QUIC, 90 FPS.

    Pre-encodes a pool of captured frames (motion synthesis + semantic
    codec) and cycles it, so long sessions do not pay LZMA per frame while
    every datagram still carries a decodable payload.
    """

    def __init__(
        self,
        session_secret: bytes,
        fps: float = float(calibration.TARGET_FPS),
        seed: int = 0,
        pool_size: int = 256,
    ) -> None:
        if pool_size < 1:
            raise ValueError("pool must hold at least one frame")
        self.fps = fps
        self._secret = session_secret
        self._codec = SemanticCodec(seed=seed)
        synth = MotionSynthesizer(fps=fps, seed=seed)
        # Production FaceTime profile: no extractor confidence channel
        # (Fig. 4 anchor: ~0.67 Mbps total uplink including audio).
        self._pool = [
            self._codec.encode(frame, include_confidence=False).payload
            for frame in synth.frames(pool_size)
        ]
        self._frame_index = 0

    @property
    def mean_frame_bytes(self) -> float:
        """Mean compressed semantic frame size (pre-QUIC)."""
        return float(np.mean([len(p) for p in self._pool]))

    def attach(self, sim: Simulator, host: Host, target_address: str,
               target_port: int = MEDIA_PORT, until: Optional[float] = None,
               meta_extra: Optional[dict] = None,
               target: Optional[MediaTarget] = None) -> None:
        """Handshake, then stream one protected frame per display tick."""
        conn = quic_connection_for(host.address, self._secret)
        target = target or MediaTarget(target_address, target_port)

        def send(payload: bytes, kind: str, frame: int) -> None:
            packet = Packet(
                src=host.address, dst=target.address,
                src_port=MEDIA_PORT, dst_port=target.port,
                protocol=IPPROTO_UDP, payload=payload,
                meta={"kind": kind, "frame": frame,
                      "origin": host.address, **(meta_extra or {})},
            )
            host.send(packet)

        def handshake() -> None:
            send(conn.initial_packet(), "quic-initial", -1)
            send(conn.handshake_packet(), "quic-handshake", -1)

        def send_frame() -> None:
            index = self._frame_index
            encoded = self._pool[index % len(self._pool)]
            for datagram in conn.protect_frame(encoded):
                send(datagram, "semantic", index)
            self._frame_index += 1

        sim.schedule(0.0, handshake)
        sim.schedule_every(1.0 / self.fps, send_frame,
                           start=2.0 / self.fps, until=until)


class LayeredSemanticSource:
    """A rate-adaptive semantic stream (ablation A4).

    Same transport shape as :class:`SemanticSource` but the payloads come
    from the layered codec at a fixed chosen layer — the sender a
    rate-adaptive FaceTime would run after its selector picks a layer.
    """

    def __init__(self, session_secret: bytes, layer,
                 fps: float = float(calibration.TARGET_FPS),
                 seed: int = 0, pool_size: int = 128) -> None:
        from repro.keypoints.layered import LayeredSemanticCodec

        if pool_size < 1:
            raise ValueError("pool must hold at least one frame")
        self.fps = fps
        self.layer = layer
        self._secret = session_secret
        codec = LayeredSemanticCodec(seed=seed)
        synth = MotionSynthesizer(fps=fps, seed=seed)
        self._pool = [
            codec.encode(frame, layer).payload
            for frame in synth.frames(pool_size)
        ]
        self._frame_index = 0

    @property
    def mean_frame_bytes(self) -> float:
        """Mean compressed frame size at the chosen layer."""
        return float(np.mean([len(p) for p in self._pool]))

    def attach(self, sim: Simulator, host: Host, target_address: str,
               target_port: int = MEDIA_PORT,
               until: Optional[float] = None,
               target: Optional[MediaTarget] = None) -> None:
        """Stream one protected layered frame per display tick."""
        conn = quic_connection_for(host.address, self._secret)
        target = target or MediaTarget(target_address, target_port)

        def send_frame() -> None:
            index = self._frame_index
            encoded = self._pool[index % len(self._pool)]
            for datagram in conn.protect_frame(encoded):
                host.send(Packet(
                    src=host.address, dst=target.address,
                    src_port=MEDIA_PORT, dst_port=target.port,
                    protocol=IPPROTO_UDP, payload=datagram,
                    meta={"kind": "semantic-layered", "frame": index,
                          "layer": int(self.layer), "origin": host.address},
                ))
            self._frame_index += 1

        sim.schedule_every(1.0 / self.fps, send_frame, until=until)


class MeshSource:
    """Direct 3D streaming: Draco-like compressed meshes at 90 FPS.

    Used by the Sec. 4.3 what-if experiment; cycles a pool of encoded
    head meshes.
    """

    def __init__(self, meshes: Optional[Sequence[TriangleMesh]] = None,
                 fps: float = float(calibration.TARGET_FPS),
                 quantization_bits: int = 11, seed: int = 0) -> None:
        codec = DracoLikeCodec(quantization_bits=quantization_bits)
        source_meshes = list(meshes) if meshes else sketchfab_head_set(seed=seed)
        self._pool = [codec.encode(m).payload for m in source_meshes]
        self.fps = fps
        self._frame_index = 0

    @property
    def mean_frame_bytes(self) -> float:
        """Mean compressed mesh frame size."""
        return float(np.mean([len(p) for p in self._pool]))

    def attach(self, sim: Simulator, host: Host, target_address: str,
               target_port: int = MEDIA_PORT,
               until: Optional[float] = None,
               target: Optional[MediaTarget] = None) -> None:
        """Stream mesh frames, fragmented to the media MTU."""
        from repro.netsim.packet import MEDIA_MTU_BYTES
        target = target or MediaTarget(target_address, target_port)

        def send_frame() -> None:
            index = self._frame_index
            blob = self._pool[index % len(self._pool)]
            for offset in range(0, len(blob), MEDIA_MTU_BYTES):
                chunk = blob[offset:offset + MEDIA_MTU_BYTES]
                host.send(Packet(
                    src=host.address, dst=target.address,
                    src_port=MEDIA_PORT, dst_port=target.port,
                    protocol=IPPROTO_UDP, payload=chunk,
                    meta={"kind": "mesh", "frame": index,
                          "origin": host.address},
                ))
            self._frame_index += 1

        sim.schedule_every(1.0 / self.fps, send_frame, until=until)


class AudioSource:
    """A 20 ms-packetized audio stream (RTP or QUIC-protected)."""

    PACKETS_PER_SECOND = 50

    def __init__(self, bitrate_kbps: float = 32.0, seed: int = 0,
                 session_secret: Optional[bytes] = None) -> None:
        if bitrate_kbps <= 0:
            raise ValueError("audio bitrate must be positive")
        self.bitrate_kbps = bitrate_kbps
        self._secret = session_secret
        self._rng = np.random.default_rng(seed)
        self._packetizer = RtpPacketizer(
            PayloadType(97, "audio", 48_000),
            ssrc=int(self._rng.integers(1, 2**32)),
        )
        self._payload_bytes = max(
            16, int(bitrate_kbps * 1000 / 8 / self.PACKETS_PER_SECOND)
        )
        self._index = 0

    def attach(self, sim: Simulator, host: Host, target_address: str,
               target_port: int = MEDIA_PORT,
               until: Optional[float] = None,
               target: Optional[MediaTarget] = None) -> None:
        """Schedule the audio packets."""
        conn = (
            quic_connection_for(host.address, self._secret)
            if self._secret is not None else None
        )
        target = target or MediaTarget(target_address, target_port)

        def send_packet() -> None:
            body = bytes(
                self._rng.integers(0, 256, self._payload_bytes, dtype=np.uint8)
            )
            if conn is not None:
                payloads = conn.protect_frame(body)
            else:
                payloads = self._packetizer.packetize(
                    body, int(self._index * 48_000 / self.PACKETS_PER_SECOND)
                )
            for payload in payloads:
                host.send(Packet(
                    src=host.address, dst=target.address,
                    src_port=AUDIO_SRC_PORT, dst_port=target.port,
                    protocol=IPPROTO_UDP, payload=payload,
                    meta={"kind": "audio", "origin": host.address},
                ))
            self._index += 1

        sim.schedule_every(
            1.0 / self.PACKETS_PER_SECOND, send_packet, until=until
        )
