"""Session feasibility planner: will a call fit a given access link?

A downstream-facing utility built from the paper's measured rates: given a
provider, a device mix, a participant count, and per-user up/down
capacity, predict the bandwidth each user needs and whether the session is
feasible — including the spatial persona's hard floor (no rate
adaptation: Sec. 4.3) and the SFU's linear downlink growth (Fig. 6(c)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro import calibration
from repro.devices.models import Device
from repro.vca.profiles import PersonaKind, VcaProfile


@dataclass(frozen=True)
class BandwidthPlan:
    """Predicted per-user bandwidth needs for one session."""

    vca: str
    n_users: int
    persona_kind: PersonaKind
    uplink_mbps: float
    downlink_mbps: float
    uplink_floor_mbps: float  # below this the session fails outright

    def fits(self, uplink_capacity_mbps: float,
             downlink_capacity_mbps: float,
             headroom: float = 0.85) -> bool:
        """Whether the plan fits the given capacities with headroom."""
        if headroom <= 0 or headroom > 1:
            raise ValueError("headroom must be in (0, 1]")
        return (
            self.uplink_mbps <= uplink_capacity_mbps * headroom
            and self.downlink_mbps <= downlink_capacity_mbps * headroom
        )


def plan_session(profile: VcaProfile, devices: Sequence[Device]
                 ) -> BandwidthPlan:
    """Predict bandwidth needs for a session of ``devices``.

    Raises:
        ValueError: For fewer than two devices, or a FaceTime spatial
            session beyond the five-persona cap.
    """
    n = len(devices)
    if n < 2:
        raise ValueError("a session needs at least two participants")
    persona_kind = profile.persona_kind(devices)
    if (persona_kind is PersonaKind.SPATIAL
            and n > calibration.MAX_SPATIAL_PERSONAS):
        raise ValueError(
            f"FaceTime caps spatial sessions at "
            f"{calibration.MAX_SPATIAL_PERSONAS} users"
        )
    if persona_kind is PersonaKind.SPATIAL:
        per_stream = calibration.SPATIAL_PERSONA_MBPS
        # No rate adaptation: the stream needs its full operating point.
        floor = calibration.RATE_ADAPTATION_CUTOFF_KBPS / 1000.0
    else:
        per_stream = profile.video_bitrate_mbps
        # 2D encoders adapt down to roughly a quarter of their target.
        floor = per_stream / 4.0
    uplink = per_stream
    # Every participant receives all other streams (SFU forwarding); a
    # two-party P2P call is the same arithmetic with n - 1 = 1.
    downlink = per_stream * (n - 1)
    return BandwidthPlan(
        vca=profile.name,
        n_users=n,
        persona_kind=persona_kind,
        uplink_mbps=uplink,
        downlink_mbps=downlink,
        uplink_floor_mbps=floor,
    )


@dataclass(frozen=True)
class FeasibilityVerdict:
    """Planner output for one capacity scenario."""

    plan: BandwidthPlan
    feasible: bool
    limiting_direction: Optional[str]  # "uplink" / "downlink" / None

    def explanation(self) -> str:
        """Human-readable verdict."""
        if self.feasible:
            return (
                f"{self.plan.vca} with {self.plan.n_users} users fits: "
                f"needs {self.plan.uplink_mbps:.2f} up / "
                f"{self.plan.downlink_mbps:.2f} down Mbps"
            )
        return (
            f"{self.plan.vca} with {self.plan.n_users} users does NOT fit: "
            f"{self.limiting_direction} needs exceed capacity"
        )


def check_feasibility(profile: VcaProfile, devices: Sequence[Device],
                      uplink_capacity_mbps: float,
                      downlink_capacity_mbps: float,
                      headroom: float = 0.85) -> FeasibilityVerdict:
    """Plan and check one session against an access link.

    Each direction is checked through :meth:`BandwidthPlan.fits` with the
    opposite capacity unconstrained, so ``headroom`` obeys the same
    ``(0, 1]`` contract in both entry points.  When both directions fail,
    ``limiting_direction`` reports ``"uplink"`` — the uplink is the
    binding constraint for the spatial persona (no rate adaptation), so
    it wins ties.

    Raises:
        ValueError: For non-positive capacities or ``headroom`` outside
            ``(0, 1]``.
    """
    if uplink_capacity_mbps <= 0 or downlink_capacity_mbps <= 0:
        raise ValueError("capacities must be positive")
    plan = plan_session(profile, devices)
    unconstrained = float("inf")
    up_ok = plan.fits(uplink_capacity_mbps, unconstrained, headroom)
    down_ok = plan.fits(unconstrained, downlink_capacity_mbps, headroom)
    limiting = None
    if not up_ok:
        limiting = "uplink"
    elif not down_ok:
        limiting = "downlink"
    return FeasibilityVerdict(plan, up_ok and down_ok, limiting)


def max_users_for_capacity(profile: VcaProfile, device_factory,
                           uplink_capacity_mbps: float,
                           downlink_capacity_mbps: float,
                           headroom: float = 0.85,
                           hard_cap: int = 50) -> int:
    """Largest session the capacities support (0 if even two users fail).

    Raises:
        ValueError: For ``headroom`` outside ``(0, 1]`` — validated
            eagerly so the spatial-cap ``ValueError`` handler below
            cannot swallow a bad argument as "zero users fit".
    """
    if headroom <= 0 or headroom > 1:
        raise ValueError("headroom must be in (0, 1]")
    best = 0
    for n in range(2, hard_cap + 1):
        devices: List[Device] = [device_factory() for _ in range(n)]
        try:
            verdict = check_feasibility(
                profile, devices, uplink_capacity_mbps,
                downlink_capacity_mbps, headroom,
            )
        except ValueError:
            break  # spatial cap reached
        if verdict.feasible:
            best = n
        else:
            break
    return best
