"""Per-VCA behaviour profiles.

Every observable the paper attributes to an application — resolution,
bitrate, transport, P2P policy, server fleet — lives in one
:class:`VcaProfile` record per provider.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro import calibration
from repro.devices.models import Device, all_vision_pro
from repro.transport.rtp import (
    FACETIME_VIDEO_PT,
    PayloadType,
    TEAMS_VIDEO_PT,
    WEBEX_VIDEO_PT,
    ZOOM_VIDEO_PT,
)


class PersonaKind(enum.Enum):
    """What representation of a participant the session delivers."""

    SPATIAL = "spatial"
    TWO_D = "2d"


class Protocol(enum.Enum):
    """Transport carrying the media."""

    QUIC = "quic"
    RTP = "rtp"


@dataclass(frozen=True)
class VcaProfile:
    """Static behaviour description of one provider.

    Attributes:
        name: Provider name, matching the fleet registry in
            :mod:`repro.geo.servers`.
        supports_spatial: Only FaceTime renders spatial personas.
        p2p_two_party: Whether two-party calls go peer-to-peer (Sec. 4.1:
            FaceTime and Zoom; FaceTime makes an exception for the
            both-Vision-Pro case, handled in :meth:`uses_p2p`).
        video_resolution: 2D persona render resolution (Sec. 4.2).
        video_bitrate_mbps: Target uplink wire throughput of the 2D
            persona stream (Fig. 4 calibration).
        video_fps: Encoder frame rate for 2D video.
        audio_bitrate_kbps: Audio stream rate.
        payload_type: RTP payload type of the video codec.
    """

    name: str
    supports_spatial: bool
    p2p_two_party: bool
    video_resolution: Tuple[int, int]
    video_bitrate_mbps: float
    video_fps: int
    audio_bitrate_kbps: float
    payload_type: PayloadType

    def persona_kind(self, devices: Sequence[Device]) -> PersonaKind:
        """Spatial persona requires FaceTime *and* all-Vision-Pro (Sec. 2, 4.1)."""
        if self.supports_spatial and all_vision_pro(tuple(devices)):
            return PersonaKind.SPATIAL
        return PersonaKind.TWO_D

    def protocol(self, devices: Sequence[Device]) -> Protocol:
        """FaceTime moves to QUIC only for spatial sessions (Sec. 4.1)."""
        if self.persona_kind(devices) is PersonaKind.SPATIAL:
            return Protocol.QUIC
        return Protocol.RTP

    def uses_p2p(self, devices: Sequence[Device]) -> bool:
        """Two-party P2P policy (Sec. 4.1).

        Zoom and FaceTime are P2P with two users, *except* FaceTime when
        both users are on Vision Pro (the spatial-persona relay case).
        """
        if len(devices) != 2 or not self.p2p_two_party:
            return False
        if self.persona_kind(devices) is PersonaKind.SPATIAL:
            return False
        return True


FACETIME = VcaProfile(
    name="FaceTime",
    supports_spatial=True,
    p2p_two_party=True,
    video_resolution=(1280, 720),
    video_bitrate_mbps=calibration.FACETIME_2D_MBPS,
    video_fps=30,
    audio_bitrate_kbps=32.0,
    payload_type=FACETIME_VIDEO_PT,
)

ZOOM = VcaProfile(
    name="Zoom",
    supports_spatial=False,
    p2p_two_party=True,
    video_resolution=calibration.ZOOM_RESOLUTION,
    video_bitrate_mbps=calibration.ZOOM_MBPS,
    video_fps=30,
    audio_bitrate_kbps=32.0,
    payload_type=ZOOM_VIDEO_PT,
)

WEBEX = VcaProfile(
    name="Webex",
    supports_spatial=False,
    p2p_two_party=False,
    video_resolution=calibration.WEBEX_RESOLUTION,
    video_bitrate_mbps=calibration.WEBEX_MBPS,
    video_fps=30,
    audio_bitrate_kbps=32.0,
    payload_type=WEBEX_VIDEO_PT,
)

TEAMS = VcaProfile(
    name="Teams",
    supports_spatial=False,
    p2p_two_party=False,
    video_resolution=(1280, 720),
    video_bitrate_mbps=calibration.TEAMS_MBPS,
    video_fps=30,
    audio_bitrate_kbps=32.0,
    payload_type=TEAMS_VIDEO_PT,
)

PROFILES: Dict[str, VcaProfile] = {
    p.name: p for p in (FACETIME, ZOOM, WEBEX, TEAMS)
}
