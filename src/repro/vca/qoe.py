"""Quality-of-experience model for immersive telepresence.

The paper anchors its QoE discussion on two published thresholds:

- **100 ms one-way delay** is "the threshold for maintaining a high QoE in
  immersive telepresence" (Sec. 4.1, [18, 21]); and
- the **90 FPS / 11.1 ms** render deadline, whose misses manifest as
  display judder (Sec. 4.5).

This module combines delay, persona availability, delivered frame rate,
and visual quality (triangle fraction) into a single [0, 1] score with
multiplicative impairments — the usual structure of parametric QoE models
— so policies (server selection, layered codecs) can be compared on one
axis.  The *shape* (which factor dominates where) is what matters; the
absolute scores carry no MOS calibration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import calibration

#: One-way delay threshold for high QoE (Sec. 4.1, refs [18, 21]).
ONE_WAY_DELAY_THRESHOLD_MS = 100.0


@dataclass(frozen=True)
class QoeFactors:
    """The measurable inputs of the QoE model."""

    one_way_delay_ms: float
    persona_availability: float     # [0, 1] reconstructed frame fraction
    displayed_fps: float
    triangle_fraction: float = 1.0  # rendered / full-quality triangles

    def __post_init__(self) -> None:
        if self.one_way_delay_ms < 0:
            raise ValueError("delay cannot be negative")
        if not 0.0 <= self.persona_availability <= 1.0:
            raise ValueError("availability must be in [0, 1]")
        if self.displayed_fps < 0:
            raise ValueError("fps cannot be negative")
        if not 0.0 <= self.triangle_fraction <= 1.0:
            raise ValueError("triangle fraction must be in [0, 1]")


def delay_factor(one_way_delay_ms: float) -> float:
    """1.0 up to the 100 ms threshold, then exponential decay.

    Interactivity degrades gracefully but quickly once the round trip
    becomes perceptible; the decay constant puts ~0.5 at 2x threshold.
    """
    if one_way_delay_ms <= ONE_WAY_DELAY_THRESHOLD_MS:
        return 1.0
    excess = one_way_delay_ms - ONE_WAY_DELAY_THRESHOLD_MS
    return float(np.exp(-excess / 150.0))


def delay_factor_arrays(one_way_delay_ms: np.ndarray) -> np.ndarray:
    """Vectorized :func:`delay_factor` over a delay array (same constants).

    The placement studies score millions of sessions per cell; this keeps
    the threshold and decay in one place while letting numpy do the work.
    """
    delay = np.asarray(one_way_delay_ms, dtype=np.float64)
    excess = np.maximum(0.0, delay - ONE_WAY_DELAY_THRESHOLD_MS)
    return np.exp(-excess / 150.0)


def frame_rate_factor(displayed_fps: float,
                      target_fps: float = float(calibration.TARGET_FPS)
                      ) -> float:
    """Linear in delivered frame ratio with a comfort floor at 60 FPS.

    Headset comfort collapses quickly under 60 FPS; between 60 and the
    90 FPS target the penalty is mild.
    """
    if displayed_fps >= target_fps:
        return 1.0
    if displayed_fps >= 60.0:
        return 0.9 + 0.1 * (displayed_fps - 60.0) / (target_fps - 60.0)
    return max(0.0, 0.9 * displayed_fps / 60.0)


def quality_factor(triangle_fraction: float) -> float:
    """Perceptual quality vs. mesh resolution (diminishing returns)."""
    return float(triangle_fraction ** 0.3)


def score(factors: QoeFactors) -> float:
    """Multiplicative QoE score in [0, 1].

    Availability gates everything: a persona that is not there has no
    experience to rate.
    """
    return (
        factors.persona_availability
        * delay_factor(factors.one_way_delay_ms)
        * frame_rate_factor(factors.displayed_fps)
        * quality_factor(factors.triangle_fraction)
    )


def meets_high_qoe_bar(factors: QoeFactors, bar: float = 0.85) -> bool:
    """Whether a configuration clears a "high QoE" bar."""
    if not 0.0 < bar <= 1.0:
        raise ValueError("bar must be in (0, 1]")
    return score(factors) >= bar


@dataclass(frozen=True)
class QoeVector:
    """Per-dimension QoE, following the immersive-communication taxonomy.

    The scalar :func:`score` collapses four perceptually distinct
    impairments into one number; surveys of immersive communication
    systems (Pérez et al.) instead report QoE along separate axes.  Each
    dimension here is one factor of the scalar model, in [0, 1]:

    - ``interactivity`` — :func:`delay_factor` of the one-way delay
      (conversational responsiveness, Sec. 4.1's 100 ms threshold);
    - ``presence`` — persona availability (is the remote user *there*);
    - ``fidelity`` — :func:`quality_factor` of the triangle fraction
      (visual quality of the rendered persona);
    - ``comfort`` — :func:`frame_rate_factor` of the displayed FPS
      (judder / headset comfort, Sec. 4.5's 90 FPS deadline).

    **Aggregation**: :meth:`aggregate` multiplies the four dimensions in
    the same left-to-right order as :func:`score` (availability, delay,
    frame rate, quality), so it is bit-identical to the legacy scalar —
    existing CSV columns and thresholds keep their meaning, and the
    vector is pure added resolution.
    """

    interactivity: float
    presence: float
    fidelity: float
    comfort: float

    def __post_init__(self) -> None:
        for name in ("interactivity", "presence", "fidelity", "comfort"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")

    @classmethod
    def from_factors(cls, factors: QoeFactors,
                     target_fps: float = float(calibration.TARGET_FPS)
                     ) -> "QoeVector":
        """Decompose :class:`QoeFactors` into the four dimensions."""
        return cls(
            interactivity=delay_factor(factors.one_way_delay_ms),
            presence=factors.persona_availability,
            fidelity=quality_factor(factors.triangle_fraction),
            comfort=frame_rate_factor(factors.displayed_fps, target_fps),
        )

    def aggregate(self) -> float:
        """Multiplicative scalar, bit-identical to :func:`score`.

        Float multiplication commutes pairwise but does not associate,
        so the factor order (presence, interactivity, comfort, fidelity)
        mirrors the grouping inside :func:`score` exactly.
        """
        return (
            self.presence * self.interactivity
            * self.comfort * self.fidelity
        )

    def worst_dimension(self) -> str:
        """Name of the most impaired dimension (ties break in the
        declaration order above)."""
        values = {
            "interactivity": self.interactivity,
            "presence": self.presence,
            "fidelity": self.fidelity,
            "comfort": self.comfort,
        }
        return min(values, key=values.get)

    def to_dict(self) -> dict:
        """JSON-safe mapping, for experiment records and reports."""
        return {
            "interactivity": self.interactivity,
            "presence": self.presence,
            "fidelity": self.fidelity,
            "comfort": self.comfort,
            "aggregate": self.aggregate(),
        }
