"""Receiver-side semantic processing and availability tracking.

The receiving headset decodes each sender's semantic frames and attempts
reconstruction.  Because semantic communication carries no redundancy and
FaceTime does no rate adaptation (Sec. 4.3), sustained frame shortfall
makes the persona unavailable — the UI's "poor connection" state.  The
receiver tracks exactly that: per-sender delivered-frame rate against the
90 FPS expectation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro import calibration
from repro.keypoints.codec import EncodedKeypointFrame, SemanticCodec
from repro.keypoints.reconstruct import frame_is_reconstructible
from repro.netsim.packet import Packet
from repro.transport.fec import FecDecoder, FecPacket
from repro.transport.quic import QuicConnection
from repro.vca.media import quic_connection_for

#: A persona is declared unavailable when fewer than this fraction of the
#: expected frames arrived and reconstructed over the evaluation window.
#: Semantic streams carry no redundancy or retransmission, so near-perfect
#: delivery is required; this threshold puts the collapse right where the
#: paper observes it (< 700 Kbps uplink -> "poor connection").
AVAILABILITY_THRESHOLD = 0.97


@dataclass
class PersonaAvailability:
    """Delivery bookkeeping for one remote sender's persona."""

    sender: str
    frames_received: int = 0
    frames_reconstructed: int = 0
    frames_failed: int = 0
    first_arrival_s: Optional[float] = None
    last_arrival_s: Optional[float] = None

    def delivered_fps(self) -> float:
        """Reconstructed frames per second over the observed span."""
        if (
            self.first_arrival_s is None
            or self.last_arrival_s is None
            or self.last_arrival_s <= self.first_arrival_s
        ):
            return 0.0
        span = self.last_arrival_s - self.first_arrival_s
        return self.frames_reconstructed / span

    def availability(self, expected_fps: float = float(calibration.TARGET_FPS)
                     ) -> float:
        """Fraction of the expected frame rate actually reconstructed."""
        if expected_fps <= 0:
            raise ValueError("expected_fps must be positive")
        return min(1.0, self.delivered_fps() / expected_fps)

    def poor_connection(self, expected_fps: float = float(calibration.TARGET_FPS)
                        ) -> bool:
        """Whether FaceTime would show "poor connection" for this persona."""
        return self.availability(expected_fps) < AVAILABILITY_THRESHOLD


class SemanticReceiver:
    """Decodes semantic streams of all remote senders at one participant.

    Bind :meth:`handle` to the participant's media port.  Non-semantic
    packets (audio, QUIC handshake) are counted but not decoded.
    """

    def __init__(self, session_secret: bytes,
                 clock: Callable[[], float]) -> None:
        self._secret = session_secret
        self._clock = clock
        self._codec = SemanticCodec()
        self._connections: Dict[str, QuicConnection] = {}
        self._fec: Dict[str, FecDecoder] = {}
        self.stats: Dict[str, PersonaAvailability] = {}
        self.other_packets = 0

    def _connection(self, sender: str) -> QuicConnection:
        if sender not in self._connections:
            self._connections[sender] = quic_connection_for(sender, self._secret)
        return self._connections[sender]

    def _stats(self, sender: str) -> PersonaAvailability:
        if sender not in self.stats:
            self.stats[sender] = PersonaAvailability(sender)
        return self.stats[sender]

    def handle(self, packet: Packet) -> None:
        """Process one arriving media packet.

        Plain ``semantic`` datagrams decode directly.  ``semantic-fec``
        datagrams are unframed first and fed through the sender's FEC
        decoder; every payload it releases (source or recovered) is a QUIC
        datagram that then takes the same decode path — QUIC's stateless
        per-packet protection is what makes recovered packets decodable.
        """
        kind = packet.meta.get("kind")
        sender = packet.meta.get("origin", packet.src)
        if kind == "semantic":
            self._ingest(sender, packet.payload)
        elif kind == "semantic-fec":
            try:
                fec_packet = FecPacket.parse(packet.payload)
            except ValueError:
                self._stats(sender).frames_failed += 1
                return
            decoder = self._fec.setdefault(sender, FecDecoder())
            for datagram in decoder.receive(fec_packet):
                self._ingest(sender, datagram)
        else:
            self.other_packets += 1

    def _ingest(self, sender: str, datagram: bytes) -> None:
        """Decode one QUIC-protected semantic datagram from ``sender``."""
        record = self._stats(sender)
        now = self._clock()
        record.frames_received += 1
        if record.first_arrival_s is None:
            record.first_arrival_s = now
        record.last_arrival_s = now
        try:
            plaintext = self._connection(sender).unprotect(datagram)
            decoded = self._codec.decode(EncodedKeypointFrame(plaintext))
        except ValueError:
            record.frames_failed += 1
            return
        if frame_is_reconstructible(decoded):
            record.frames_reconstructed += 1
        else:
            record.frames_failed += 1

    def fec_recovered(self, sender: str) -> int:
        """Datagrams FEC recovered for one sender (0 when FEC is off)."""
        decoder = self._fec.get(sender)
        return decoder.recovered if decoder else 0

    def senders(self) -> List[str]:
        """Addresses of all senders seen so far."""
        return sorted(self.stats)

    def any_poor_connection(self) -> bool:
        """True when any remote persona dropped below the threshold."""
        return any(s.poor_connection() for s in self.stats.values())
