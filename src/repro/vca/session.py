"""Telepresence session orchestration over the simulated testbed.

A :class:`TelepresenceSession` wires participants, the provider's behaviour
profile, server selection, media sources, receivers, and AP captures into
one runnable experiment — the unit every measurement in Sec. 4 operates on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from typing import TYPE_CHECKING

from repro import calibration
from repro.devices.models import Device

if TYPE_CHECKING:  # deferred: repro.faults imports back into repro.vca
    from repro.faults.resilient import (
        ResilienceConfig,
        ResilienceRuntime,
        SessionResilience,
    )
    from repro.faults.schedule import FaultSchedule
from repro.geo.coords import GeoPoint
from repro.geo.latency import PathModel, DEFAULT_PATH_MODEL
from repro.geo.servers import Server, build_fleet
from repro.netsim.capture import PacketCapture
from repro.netsim.engine import Simulator
from repro.netsim.network import Network
from repro.netsim.node import Host
from repro.netsim.packet import Packet
from repro.netsim.sfu import SelectiveForwardingUnit
from repro.netsim.shaper import TrafficShaper
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.vca.media import (
    MEDIA_PORT,
    AudioSource,
    SemanticSource,
    VideoSource,
)
from repro.vca.profiles import PersonaKind, Protocol, VcaProfile
from repro.vca.receiver import SemanticReceiver
from repro.vca.stats import MediaStatsCollector, RtcpAgent


@dataclass(frozen=True)
class Participant:
    """One user in a session."""

    user_id: str
    device: Device
    location: GeoPoint

    def address(self, index: int) -> str:
        """Deterministic client address by join order."""
        return f"10.0.{index}.2"


@dataclass
class SessionResult:
    """Everything a finished session exposes for analysis."""

    profile: VcaProfile
    persona_kind: PersonaKind
    protocol: Protocol
    p2p: bool
    server: Optional[Server]
    duration_s: float
    captures: Dict[str, PacketCapture]
    receivers: Dict[str, SemanticReceiver]
    video_packets_received: Dict[str, int]
    addresses: Dict[str, str]
    stats_collectors: Dict[str, MediaStatsCollector] = field(default_factory=dict)
    resilience: Optional["SessionResilience"] = None

    def capture_of(self, user_id: str) -> PacketCapture:
        """The AP capture of one participant."""
        return self.captures[user_id]

    def receiver_of(self, user_id: str) -> SemanticReceiver:
        """The semantic receiver of one participant (spatial sessions)."""
        return self.receivers[user_id]

    def stats_of(self, user_id: str) -> MediaStatsCollector:
        """The in-app statistics panel of one participant (2D sessions)."""
        return self.stats_collectors[user_id]


class TelepresenceSession:
    """Builds and runs one telepresence call.

    Args:
        profile: Provider behaviour profile.
        participants: Users in join order; the first is the initiator
            unless ``initiator_index`` says otherwise.
        seed: Master seed for media and motion randomness.
        path_model: Wide-area latency model.
        warmup_s: Time before sources start counting toward captures
            (handshakes happen here).
        faults: Optional fault schedule to inject during the run.
        resilience: Optional resilience tunables; providing either
            ``faults`` or ``resilience`` turns on the resilience runtime
            (degradation ladder, reconnect/failover, resilience metrics).
            Without both, the session behaves exactly as before.
        sim: Optional externally owned event engine — anything exposing
            the scalar :class:`~repro.netsim.engine.Simulator` surface,
            in particular a batch engine's
            :class:`~repro.netsim.batch.LaneSimulator` view.  When many
            sessions share one batch engine, advance the shared clock
            once and harvest each session with :meth:`collect`.
    """

    def __init__(
        self,
        profile: VcaProfile,
        participants: Sequence[Participant],
        initiator_index: int = 0,
        seed: int = 0,
        path_model: Optional[PathModel] = None,
        faults: Optional["FaultSchedule"] = None,
        resilience: Optional["ResilienceConfig"] = None,
        sim: Optional[Simulator] = None,
    ) -> None:
        if len(participants) < 2:
            raise ValueError("a session needs at least two participants")
        if not 0 <= initiator_index < len(participants):
            raise ValueError("initiator index out of range")
        if (
            profile.supports_spatial
            and len(participants) > calibration.MAX_SPATIAL_PERSONAS
            and profile.persona_kind([p.device for p in participants])
            is PersonaKind.SPATIAL
        ):
            raise ValueError(
                f"FaceTime supports at most {calibration.MAX_SPATIAL_PERSONAS} "
                "spatial personas"
            )
        self.profile = profile
        self.participants = list(participants)
        self.initiator_index = initiator_index
        self.seed = seed
        self.sim = sim if sim is not None else Simulator()
        self.network = Network(self.sim, path_model or DEFAULT_PATH_MODEL)

        devices = [p.device for p in self.participants]
        self.persona_kind = profile.persona_kind(devices)
        self.protocol = profile.protocol(devices)
        self.p2p = profile.uses_p2p(devices)
        self.session_secret = hashlib.sha256(
            f"{profile.name}-{seed}".encode()
        ).digest()

        self._hosts: Dict[str, Host] = {}
        self._addresses: Dict[str, str] = {}
        self._receivers: Dict[str, SemanticReceiver] = {}
        self._video_counts: Dict[str, int] = {}
        self._stats_collectors: Dict[str, MediaStatsCollector] = {}
        self._captures: Dict[str, PacketCapture] = {}
        self.server: Optional[Server] = None
        self._sfu: Optional[SelectiveForwardingUnit] = None
        self.resilience_runtime: Optional["ResilienceRuntime"] = None
        if faults is not None or resilience is not None:
            from repro.faults.resilient import ResilienceRuntime

            self.resilience_runtime = ResilienceRuntime(self, faults, resilience)
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build(self) -> None:
        for index, participant in enumerate(self.participants):
            address = participant.address(index)
            host = Host(address, participant.location, name=participant.user_id)
            self.network.attach(host)
            self._hosts[participant.user_id] = host
            self._addresses[participant.user_id] = address
            self._captures[participant.user_id] = self.network.start_capture(address)

        if not self.p2p:
            fleet = build_fleet(self.profile.name, self.network.path_model)
            initiator = self.participants[self.initiator_index]
            self.server = fleet.select_for_session(
                initiator.location, [p.location for p in self.participants]
            )
            sfu = SelectiveForwardingUnit(
                self.server.address, self.server.location,
                name=f"{self.profile.name}-sfu",
            )
            self.network.attach(sfu)
            for participant in self.participants:
                sfu.register(self._addresses[participant.user_id], MEDIA_PORT)
            self._sfu = sfu

        for index, participant in enumerate(self.participants):
            self._wire_participant(index, participant)

        if self.resilience_runtime is not None:
            self.resilience_runtime.finalize()

    def _media_target(self, index: int) -> "tuple[str, int]":
        """(address, port) where participant ``index`` sends media."""
        if self._sfu is not None:
            return self._sfu.address, SelectiveForwardingUnit.MEDIA_PORT
        peer = self.participants[1 - index]  # p2p implies two participants
        return self._addresses[peer.user_id], MEDIA_PORT

    def _wire_participant(self, index: int, participant: Participant) -> None:
        host = self._hosts[participant.user_id]
        target_address, target_port = self._media_target(index)
        seed = self.seed * 1000 + index
        # Per-stream counters, fetched once here so the per-packet hot
        # path is a single attribute add.
        rx_packets = obs_metrics.counter(
            f"vca.rx.packets.{participant.user_id}"
        )
        runtime = self.resilience_runtime
        target = (
            runtime.media_target(participant.user_id, target_address,
                                 target_port)
            if runtime is not None else None
        )

        if self.persona_kind is PersonaKind.SPATIAL:
            receiver = SemanticReceiver(self.session_secret, lambda: self.sim.now)
            handler = receiver.handle
            if runtime is not None:
                handler = runtime.tap(participant.user_id, handler)

            def counted(packet: Packet, _inner=handler,
                        _rx=rx_packets) -> None:
                _rx.inc()
                _inner(packet)

            host.bind(MEDIA_PORT, counted)
            self._receivers[participant.user_id] = receiver
            if runtime is not None and runtime.config.enable_ladder:
                runtime.spatial_source(participant.user_id, seed).attach(
                    self.sim, host, target_address, target_port, target=target
                )
            else:
                SemanticSource(self.session_secret, seed=seed).attach(
                    self.sim, host, target_address, target_port, target=target
                )
            AudioSource(
                self.profile.audio_bitrate_kbps, seed=seed,
                session_secret=self.session_secret,
            ).attach(self.sim, host, target_address, target_port,
                     target=target)
        else:
            self._video_counts[participant.user_id] = 0
            collector = MediaStatsCollector(self.profile, lambda: self.sim.now)
            self._stats_collectors[participant.user_id] = collector

            def receive(packet: Packet, uid: str = participant.user_id,
                        coll: MediaStatsCollector = collector,
                        _rx=rx_packets) -> None:
                _rx.inc()
                if packet.meta.get("kind") == "video":
                    self._video_counts[uid] += 1
                coll.on_packet(packet)

            handler = receive
            if runtime is not None:
                handler = runtime.tap(participant.user_id, handler)
            host.bind(MEDIA_PORT, handler)
            video_mbps = (
                self.profile.video_bitrate_mbps
                - self.profile.audio_bitrate_kbps / 1000.0
            )
            rate_scale = (
                runtime.video_rate_scale(participant.user_id, video_mbps)
                if runtime is not None and runtime.config.enable_ladder
                else None
            )
            video = VideoSource(
                self.profile.payload_type, video_mbps,
                fps=self.profile.video_fps, seed=seed,
                rate_scale=rate_scale,
            )
            video.attach(self.sim, host, target_address, target_port,
                         target=target)
            AudioSource(self.profile.audio_bitrate_kbps, seed=seed).attach(
                self.sim, host, target_address, target_port, target=target
            )
            RtcpAgent(host, collector, video, target_address,
                      target_port).attach(self.sim)

    # ------------------------------------------------------------------
    # Controls and execution
    # ------------------------------------------------------------------

    def host_of(self, user_id: str) -> Host:
        """The simulated host of a participant."""
        return self._hosts[user_id]

    def shape_uplink(self, user_id: str, shaper: Optional[TrafficShaper]) -> None:
        """Install a tc-style shaper on one participant's uplink."""
        self.network.set_uplink_shaper(self._addresses[user_id], shaper)

    def shape_downlink(self, user_id: str, shaper: Optional[TrafficShaper]) -> None:
        """Install a tc-style shaper on one participant's downlink."""
        self.network.set_downlink_shaper(self._addresses[user_id], shaper)

    def run(self, duration_s: float = float(calibration.MIN_SESSION_SECONDS)
            ) -> SessionResult:
        """Run the call for ``duration_s`` simulated seconds."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        with obs_trace.span("vca.session.run", cat="session",
                            sim_clock=lambda: self.sim.now,
                            profile=self.profile.name,
                            users=len(self.participants),
                            persona=self.persona_kind.value):
            self.sim.run(until=duration_s)
        return self.collect(duration_s)

    def collect(self, duration_s: float) -> SessionResult:
        """Harvest the result once the clock has reached ``duration_s``.

        Split from :meth:`run` for batched cohorts: when N sessions share
        one engine the shared clock is advanced once, then each session
        is collected individually.  :meth:`run` is exactly advance +
        collect.
        """
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        obs_metrics.counter("vca.sessions_run").inc()
        resilience = (
            self.resilience_runtime.collect(duration_s)
            if self.resilience_runtime is not None else None
        )
        return SessionResult(
            profile=self.profile,
            persona_kind=self.persona_kind,
            protocol=self.protocol,
            p2p=self.p2p,
            server=self.server,
            duration_s=duration_s,
            captures=dict(self._captures),
            receivers=dict(self._receivers),
            video_packets_received=dict(self._video_counts),
            addresses=dict(self._addresses),
            stats_collectors=dict(self._stats_collectors),
            resilience=resilience,
        )
