"""SharePlay: shared content alongside spatial personas.

Sec. 5 of the paper lists the use cases it leaves for future work:
"collaborative whiteboards and shared entertainment experiences (e.g.,
playing games and watching movies)" via SharePlay.  This module adds the
missing stream type — a shared-content video channel riding the same
session — so those scenarios can be measured:

- movie playback: a steady high-bitrate video stream from the host;
- whiteboard: a low-rate, bursty update stream (only strokes move).

Both coexist with the semantic persona streams, which is exactly the
interesting question: the persona needs < 0.7 Mbps, the movie needs an
order of magnitude more, and a constrained uplink must now choose.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.netsim.engine import Simulator
from repro.netsim.node import Host
from repro.netsim.packet import IPPROTO_UDP, Packet
from repro.vca.media import MEDIA_PORT, _PAYLOAD_FRACTION

#: Source port of shared-content streams (separable by 5-tuple).
SHAREPLAY_SRC_PORT = 40004


class SharedContentKind(enum.Enum):
    """The SharePlay content types the paper names."""

    MOVIE = "movie"
    WHITEBOARD = "whiteboard"
    GAME = "game"


@dataclass(frozen=True)
class SharedContentProfile:
    """Rate/shape description of one content kind."""

    kind: SharedContentKind
    target_mbps: float
    fps: int
    burstiness: float  # lognormal sigma of frame sizes

    @classmethod
    def movie(cls) -> "SharedContentProfile":
        """1080p movie playback."""
        return cls(SharedContentKind.MOVIE, 8.0, 24, 0.25)

    @classmethod
    def whiteboard(cls) -> "SharedContentProfile":
        """Stroke updates: low rate, highly bursty."""
        return cls(SharedContentKind.WHITEBOARD, 0.15, 15, 1.0)

    @classmethod
    def game(cls) -> "SharedContentProfile":
        """Rendered game view shared at 60 FPS."""
        return cls(SharedContentKind.GAME, 12.0, 60, 0.35)


class SharedContentSource:
    """Streams shared content from the SharePlay host."""

    def __init__(self, profile: SharedContentProfile, seed: int = 0) -> None:
        if profile.target_mbps <= 0:
            raise ValueError("content bitrate must be positive")
        self.profile = profile
        self._rng = np.random.default_rng(seed)
        self._frame_index = 0
        wire_frame = profile.target_mbps * 1e6 / 8.0 / profile.fps
        self._mean_payload = wire_frame * _PAYLOAD_FRACTION
        self.bytes_sent = 0

    def attach(self, sim: Simulator, host: Host, target_address: str,
               target_port: int = MEDIA_PORT,
               until: Optional[float] = None) -> None:
        """Schedule the content stream."""

        def send_frame() -> None:
            sigma = self.profile.burstiness
            jitter = float(self._rng.lognormal(0.0, sigma))
            jitter /= float(np.exp(sigma**2 / 2.0))
            size = max(32, int(self._mean_payload * jitter))
            from repro.netsim.packet import MEDIA_MTU_BYTES

            frame = bytes(self._rng.integers(0, 256, size, dtype=np.uint8))
            for offset in range(0, len(frame), MEDIA_MTU_BYTES):
                chunk = frame[offset:offset + MEDIA_MTU_BYTES]
                host.send(Packet(
                    src=host.address, dst=target_address,
                    src_port=SHAREPLAY_SRC_PORT, dst_port=target_port,
                    protocol=IPPROTO_UDP, payload=chunk,
                    meta={"kind": "shareplay",
                          "content": self.profile.kind.value,
                          "frame": self._frame_index,
                          "origin": host.address},
                ))
                self.bytes_sent += len(chunk)
            self._frame_index += 1

        sim.schedule_every(1.0 / self.profile.fps, send_frame, until=until)
