"""In-app telepresence statistics — the panels the paper reads.

Sec. 3.2: "we collect telepresence statistics using the tools provided by
Zoom [76], Webex [25], and Teams [53]".  Those panels show, per incoming
stream: resolution, frame rate, receive bitrate, packet loss, jitter, and
round-trip time — all derived from RTP arrival bookkeeping plus RTCP.

:class:`MediaStatsCollector` is the receiver half (RTP accounting +
incoming RTCP), :class:`RtcpAgent` the periodic SR/RR sender; together a
2D session exposes the same panel the paper's screenshots come from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.netsim.engine import Simulator
from repro.netsim.node import Host
from repro.netsim.packet import IPPROTO_UDP, Packet
from repro.transport.rtcp import (
    ReceiverReport,
    ReceptionEstimator,
    SenderReport,
    parse_rtcp,
    rtt_from_report,
    to_ntp_middle,
)
from repro.transport.rtp import RtpHeader
from repro.vca.profiles import VcaProfile


@dataclass(frozen=True)
class StreamStatistics:
    """One row of the in-app statistics panel."""

    origin: str
    resolution: Tuple[int, int]
    frame_rate_fps: float
    receive_mbps: float
    packet_loss: float
    jitter_ms: float
    rtt_ms: Optional[float]


@dataclass
class _StreamState:
    """Receiver bookkeeping for one remote stream."""

    estimator: ReceptionEstimator
    payload_bytes: int = 0
    frames: int = 0
    first_arrival: Optional[float] = None
    last_arrival: Optional[float] = None


class MediaStatsCollector:
    """Receiver-side statistics for every incoming 2D media stream."""

    def __init__(self, profile: VcaProfile, clock: Callable[[], float]) -> None:
        self.profile = profile
        self._clock = clock
        self._streams: Dict[str, _StreamState] = {}
        #: RTTs computed from RRs that echo our own SRs.
        self.measured_rtts_ms: List[float] = []
        self._own_sr_middles: List[int] = []

    def _stream(self, origin: str) -> _StreamState:
        if origin not in self._streams:
            self._streams[origin] = _StreamState(
                ReceptionEstimator(
                    ssrc=0, clock_rate_hz=self.profile.payload_type.clock_rate_hz
                )
            )
        return self._streams[origin]

    def note_own_sender_report(self, ntp_seconds: float) -> None:
        """Remember an SR we sent, to match returned LSR fields."""
        self._own_sr_middles.append(to_ntp_middle(ntp_seconds))

    def on_packet(self, packet: Packet) -> None:
        """Feed one received media-port packet (video or RTCP)."""
        kind = packet.meta.get("kind")
        origin = packet.meta.get("origin", packet.src)
        now = self._clock()
        if kind == "video":
            try:
                header = RtpHeader.parse(packet.payload)
            except ValueError:
                return
            state = self._stream(origin)
            state.estimator.ssrc = header.ssrc
            state.estimator.on_rtp(header.sequence, header.timestamp, now)
            state.payload_bytes += len(packet.payload)
            if state.first_arrival is None:
                state.first_arrival = now
            state.last_arrival = now
            if header.marker:
                state.frames += 1
        elif kind == "rtcp":
            self._on_rtcp(origin, packet.payload, now)

    def _on_rtcp(self, origin: str, payload: bytes, now: float) -> None:
        try:
            report = parse_rtcp(payload)
        except ValueError:
            return
        if isinstance(report, SenderReport):
            self._stream(origin).estimator.on_sender_report(report, now)
            blocks = report.blocks
        else:
            blocks = report.blocks
        for block in blocks:
            for middle in self._own_sr_middles:
                rtt = rtt_from_report(block, middle, now)
                if rtt is not None:
                    self.measured_rtts_ms.append(rtt * 1000.0)
                    break

    def origins(self) -> List[str]:
        """All remote senders seen so far."""
        return sorted(self._streams)

    def report_blocks(self) -> List:
        """Fresh report blocks for every tracked stream (for our RR/SR)."""
        now = self._clock()
        return [
            s.estimator.make_report_block(now) for s in self._streams.values()
        ]

    def snapshot(self, origin: str) -> StreamStatistics:
        """The panel row for one remote stream.

        Raises:
            KeyError: If no media from ``origin`` has arrived yet.
        """
        state = self._streams[origin]
        span = 0.0
        if state.first_arrival is not None and state.last_arrival is not None:
            span = state.last_arrival - state.first_arrival
        fps = state.frames / span if span > 0 else 0.0
        mbps = state.payload_bytes * 8.0 / span / 1e6 if span > 0 else 0.0
        expected = state.estimator.expected
        loss = state.estimator.cumulative_lost / expected if expected else 0.0
        rtt = (
            sum(self.measured_rtts_ms) / len(self.measured_rtts_ms)
            if self.measured_rtts_ms else None
        )
        return StreamStatistics(
            origin=origin,
            resolution=self.profile.video_resolution,
            frame_rate_fps=fps,
            receive_mbps=mbps,
            packet_loss=loss,
            jitter_ms=state.estimator.jitter_seconds * 1000.0,
            rtt_ms=rtt,
        )


class RtcpAgent:
    """Periodic RTCP SR+RR sender for one session participant."""

    #: RTCP reporting interval (the usual 5% bandwidth rule lands around
    #: seconds for these stream rates; the paper's panels update ~1 Hz).
    INTERVAL_S = 1.0

    def __init__(
        self,
        host: Host,
        collector: MediaStatsCollector,
        video_source,  # VideoSource; duck-typed to avoid an import cycle
        target_address: str,
        target_port: int,
    ) -> None:
        self.host = host
        self.collector = collector
        self.video_source = video_source
        self.target_address = target_address
        self.target_port = target_port
        self.reports_sent = 0

    def attach(self, sim: Simulator, until: Optional[float] = None) -> None:
        """Schedule the periodic reports."""

        def send_reports() -> None:
            now = sim.now
            blocks = tuple(self.collector.report_blocks())
            sr = SenderReport(
                ssrc=self.video_source.ssrc,
                ntp_seconds=now,
                rtp_timestamp=self.video_source.current_rtp_timestamp,
                packet_count=self.video_source.packets_sent,
                byte_count=self.video_source.payload_bytes_sent,
                blocks=blocks,
            )
            self.collector.note_own_sender_report(now)
            self.host.send(Packet(
                src=self.host.address, dst=self.target_address,
                src_port=40001, dst_port=self.target_port,
                protocol=IPPROTO_UDP, payload=sr.pack(),
                meta={"kind": "rtcp", "origin": self.host.address},
            ))
            self.reports_sent += 1

        sim.schedule_every(self.INTERVAL_S, send_reports,
                           start=self.INTERVAL_S, until=until)
