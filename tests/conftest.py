"""Shared fixtures: expensive artifacts built once per test session."""

from __future__ import annotations

import pytest

from repro.keypoints.motion import capture_session
from repro.mesh.generate import head_mesh, persona_mesh


@pytest.fixture(scope="session")
def persona():
    """The 78,030-triangle spatial persona mesh."""
    return persona_mesh(seed=0)


@pytest.fixture(scope="session")
def small_head():
    """A small head mesh for cheap geometry tests."""
    return head_mesh(2000, seed=1)


@pytest.fixture(scope="session")
def motion_frames():
    """100 frames of synthetic keypoint motion."""
    return capture_session(100, fps=90, seed=3)
