"""Statistics, throughput extraction, and the protocol classifier."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis.latency import measure_server_rtts
from repro.analysis.protocol import classify_records
from repro.analysis.stats import summarize_samples
from repro.analysis.throughput import (
    mean_throughput_mbps,
    throughput_windows_mbps,
)
from repro.geo.regions import city
from repro.geo.servers import ALL_FLEETS
from repro.netsim.capture import CapturedPacket, Direction, PacketCapture
from repro.netsim.packet import IPPROTO_UDP


class TestSummaryStats:
    def test_known_values(self):
        s = summarize_samples([1.0, 2.0, 3.0, 4.0, 5.0])
        assert s.mean == 3.0
        assert s.median == 3.0
        assert s.count == 5

    def test_percentile_ordering(self):
        data = np.random.default_rng(0).normal(10, 2, 500)
        s = summarize_samples(data)
        assert s.p5 <= s.p25 <= s.median <= s.p75 <= s.p95

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_samples([])

    def test_row_renders(self):
        row = summarize_samples([1.0]).row("metric", unit="ms")
        assert "metric" in row and "n=1" in row

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=200))
    def test_mean_within_range(self, samples):
        s = summarize_samples(samples)
        assert min(samples) - 1e-9 <= s.mean <= max(samples) + 1e-9


def synthetic_capture(host="10.0.0.2", peer="10.0.9.9", pps=100,
                      size=125, seconds=10.0):
    """A capture with perfectly regular uplink traffic."""
    cap = PacketCapture(host)
    n = int(pps * seconds)
    for i in range(n):
        cap.records.append(CapturedPacket(
            timestamp=i / pps,
            direction=Direction.UPLINK,
            wire_bytes=size,
            src=host, dst=peer, src_port=1, dst_port=2,
            protocol=IPPROTO_UDP, snap=b"",
        ))
    return cap


class TestThroughputWindows:
    def test_constant_rate_recovered(self):
        cap = synthetic_capture(pps=100, size=125, seconds=10)  # 0.1 Mbps
        windows = throughput_windows_mbps(cap, Direction.UPLINK)
        assert windows
        for w in windows:
            assert w == pytest.approx(0.1, rel=0.02)

    def test_head_skipped(self):
        cap = synthetic_capture(seconds=5)
        # A burst before the skip threshold must not pollute window 0.
        cap.records.insert(0, CapturedPacket(
            timestamp=0.0, direction=Direction.UPLINK, wire_bytes=10**6,
            src="10.0.0.2", dst="10.0.9.9", src_port=1, dst_port=2,
            protocol=IPPROTO_UDP, snap=b"",
        ))
        windows = throughput_windows_mbps(cap, Direction.UPLINK)
        assert max(windows) < 1.0

    def test_empty_capture(self):
        cap = PacketCapture("10.0.0.2")
        assert throughput_windows_mbps(cap, Direction.UPLINK) == []

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            throughput_windows_mbps(PacketCapture("x"), Direction.UPLINK, 0)

    def test_mean_throughput(self):
        cap = synthetic_capture(pps=100, size=125, seconds=10)
        assert mean_throughput_mbps(cap, Direction.UPLINK, 10.0) == pytest.approx(
            0.1, rel=0.02
        )


def record_with_snap(snap):
    return CapturedPacket(
        timestamp=0.0, direction=Direction.UPLINK, wire_bytes=len(snap) + 28,
        src="a", dst="b", src_port=1, dst_port=2, protocol=IPPROTO_UDP,
        snap=snap,
    )


class TestProtocolClassifier:
    def test_rtp_recognized_with_payload_type(self):
        from repro.transport.rtp import FACETIME_VIDEO_PT, RtpPacketizer

        packet = RtpPacketizer(FACETIME_VIDEO_PT, 1).packetize(b"x" * 40, 0)[0]
        report = classify_records([record_with_snap(packet[:64])])
        assert report.rtp_packets == 1
        assert report.dominant == "rtp"
        assert report.dominant_payload_type() == FACETIME_VIDEO_PT.number

    def test_quic_recognized(self):
        from repro.transport.quic import QuicConnection

        conn = QuicConnection(b"conn0001", b"s" * 16)
        datagram = conn.protect_frame(b"x" * 40)[0]
        report = classify_records([record_with_snap(datagram[:64])])
        assert report.quic_packets == 1
        assert report.dominant == "quic"

    def test_other_bytes(self):
        report = classify_records([record_with_snap(b"\x00\x01\x02" * 10)])
        assert report.other_packets == 1

    def test_majority_wins(self):
        from repro.transport.rtp import ZOOM_VIDEO_PT, RtpPacketizer

        packer = RtpPacketizer(ZOOM_VIDEO_PT, 1)
        records = [
            record_with_snap(packer.packetize(b"y" * 20, i)[0][:64])
            for i in range(3)
        ] + [record_with_snap(b"\x00" * 20)]
        assert classify_records(records).dominant == "rtp"

    def test_no_payload_type_without_rtp(self):
        report = classify_records([record_with_snap(b"\x00" * 20)])
        assert report.dominant_payload_type() is None


class TestServerRtts:
    def test_matrix_cell_reasonable(self):
        servers = [ALL_FLEETS["FaceTime"].by_label("W")]
        result = measure_server_rtts(city("san jose"), servers, repeats=5)
        stats = result["FaceTime/W"]
        assert 2 < stats.mean < 20
        assert stats.count == 5

    def test_repeats_validated(self):
        with pytest.raises(ValueError):
            measure_server_rtts(city("dallas"), [], repeats=0)
