"""Golden differential suite: the batch cohort engine vs the scalar oracle.

Every test here holds the two execution paths together:

* a session hosted on a :class:`~repro.netsim.batch.LaneSimulator` lane
  must be **bit-identical** to the same session on its own scalar
  :class:`~repro.netsim.engine.Simulator` (captures compared record by
  record, no tolerance);
* the vectorized SFU fast path (:func:`~repro.vca.cohort.
  sfu_cohort_downlink`) must reproduce the event-driven
  ``multi_user_testbed`` oracle at the paper's user counts;
* the numpy service kernels and batched analysis paths must match their
  scalar counterparts (exactly where the arithmetic is exact, within the
  documented few-ulp tolerance where prefix reductions reassociate
  float additions).
"""

import numpy as np
import pytest

from repro.analysis.throughput import (
    cohort_throughput_windows_mbps,
    throughput_windows_mbps,
)
from repro.core.testbed import default_two_user_testbed, multi_user_testbed
from repro.faults.schedule import FaultEvent, FaultKind, FaultSchedule
from repro.netsim.batch import (
    BatchSimulator,
    drop_tail_departures,
    fifo_departures,
    windowed_lane_bytes,
)
from repro.netsim.capture import Direction
from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.netsim.packet import IPPROTO_UDP, Packet
from repro.vca.cohort import CohortRunner, sfu_cohort_downlink
from repro.vca.jitterbuffer import JitterBuffer
from repro.vca.profiles import FACETIME, ZOOM


def scalar_run(testbed_factory, profile, seed, duration_s, **session_kwargs):
    """The oracle: one session on its own scalar simulator."""
    return testbed_factory().session(
        profile, seed=seed, **session_kwargs
    ).run(duration_s)


def assert_results_identical(scalar, batched, users):
    """Captures equal record by record — the bit-identity contract."""
    assert scalar.addresses == batched.addresses
    for user in users:
        s_records = scalar.capture_of(user).records
        b_records = batched.capture_of(user).records
        assert len(s_records) == len(b_records), user
        assert s_records == b_records, user
    for user in users:
        if user not in scalar.receivers:  # 2D sessions have no semantics
            assert user not in batched.receivers
            continue
        s_stats = scalar.receiver_of(user).stats
        b_stats = batched.receiver_of(user).stats
        assert set(s_stats) == set(b_stats)
        for peer in s_stats:
            assert (s_stats[peer].availability()
                    == b_stats[peer].availability()), (user, peer)


class TestCohortOfOne:
    """A cohort of one is the scalar run, bit for bit."""

    def test_two_user_session_bit_identical(self):
        scalar = scalar_run(default_two_user_testbed, FACETIME, 0, 6.0)
        runner = CohortRunner()
        runner.add(lambda sim: default_two_user_testbed().session(
            FACETIME, seed=0, sim=sim))
        (batched,) = runner.run(6.0)
        assert_results_identical(scalar, batched, ["U1", "U2"])

    def test_lane_counters_match_scalar_counters(self):
        testbed = default_two_user_testbed()
        session = testbed.session(FACETIME, seed=1)
        session.run(4.0)
        scalar_stats = session.sim.stats()

        runner = CohortRunner()
        runner.add(lambda sim: default_two_user_testbed().session(
            FACETIME, seed=1, sim=sim))
        runner.run(4.0)
        lane_stats = runner.batch.lane_stats(0)
        for key in ("events_scheduled", "events_fired", "events_cancelled",
                    "sim_time_s"):
            assert lane_stats[key] == scalar_stats[key], key

    def test_fault_schedule_bit_identical(self):
        """The cancel/fault path desyncs nothing (drop, rate collapse)."""
        faults = FaultSchedule.scripted([
            FaultEvent(FaultKind.LOSS_BURST, "U2", 1.0, 0.8, 0.2),
            FaultEvent(FaultKind.BANDWIDTH_COLLAPSE, "U2", 2.5, 0.6, 0.05),
        ])
        scalar = scalar_run(default_two_user_testbed, FACETIME, 2, 5.0,
                            faults=faults)
        runner = CohortRunner()
        runner.add(lambda sim: default_two_user_testbed().session(
            FACETIME, seed=2, sim=sim, faults=faults))
        (batched,) = runner.run(5.0)
        for user in ("U1", "U2"):
            assert (scalar.capture_of(user).records
                    == batched.capture_of(user).records)


class TestCohortOfMany:
    """N lanes equal N independent scalar runs; lanes never interact."""

    COHORT = [
        (FACETIME, 0),
        (ZOOM, 3),
        (FACETIME, 7),
        (FACETIME, 11),
    ]

    def test_mixed_cohort_matches_independent_scalar_runs(self):
        scalars = [
            scalar_run(default_two_user_testbed, profile, seed, 5.0)
            for profile, seed in self.COHORT
        ]
        runner = CohortRunner()
        for profile, seed in self.COHORT:
            runner.add(lambda sim, p=profile, s=seed:
                       default_two_user_testbed().session(p, seed=s, sim=sim))
        batched = runner.run(5.0)
        for scalar, batch in zip(scalars, batched):
            assert_results_identical(scalar, batch, ["U1", "U2"])

    def test_multi_user_sfu_sessions_batch_identically(self):
        scalars = [
            scalar_run(lambda: multi_user_testbed(3), FACETIME, seed, 5.0)
            for seed in (0, 1)
        ]
        runner = CohortRunner()
        for seed in (0, 1):
            runner.add(lambda sim, s=seed:
                       multi_user_testbed(3).session(FACETIME, seed=s,
                                                     sim=sim))
        batched = runner.run(5.0)
        for scalar, batch in zip(scalars, batched):
            assert_results_identical(scalar, batch, ["U1", "U2", "U3"])

    def test_aggregate_counters_fold_from_lanes(self):
        runner = CohortRunner()
        for seed in range(3):
            runner.add(lambda sim, s=seed: default_two_user_testbed().session(
                FACETIME, seed=s, sim=sim))
        runner.run(3.0)
        batch = runner.batch
        agg = batch.stats()
        lanes = [batch.lane_stats(i) for i in range(batch.n_lanes)]
        for key in ("events_scheduled", "events_fired", "events_cancelled"):
            assert agg[key] == sum(lane[key] for lane in lanes), key
        assert agg["lanes"] == 3

    def test_batched_analysis_matches_scalar_per_capture(self):
        runner = CohortRunner()
        for seed in (0, 5):
            runner.add(lambda sim, s=seed: default_two_user_testbed().session(
                FACETIME, seed=s, sim=sim))
        captures = [r.capture_of("U1") for r in runner.run(6.0)]
        batched = cohort_throughput_windows_mbps(captures,
                                                 Direction.DOWNLINK)
        for capture, windows in zip(captures, batched):
            assert windows == throughput_windows_mbps(capture,
                                                      Direction.DOWNLINK)


class TestCounterAttribution:
    """Satellite: batch counters attribute per session, not one blob."""

    def test_per_lane_scheduled_fired_cancelled(self):
        batch = BatchSimulator(n_lanes=2)
        lane0, lane1 = batch.lane(0), batch.lane(1)
        handles = [lane0.schedule(0.1 * (i + 1), lambda: None)
                   for i in range(4)]
        lane1.schedule(0.05, lambda: None)
        lane0.cancel(handles[2])
        batch.run()
        assert lane0.stats()["events_scheduled"] == 4
        assert lane0.stats()["events_fired"] == 3
        assert lane0.stats()["events_cancelled"] == 1
        assert lane1.stats()["events_scheduled"] == 1
        assert lane1.stats()["events_fired"] == 1
        assert lane1.stats()["events_cancelled"] == 0

    def test_cancel_on_one_lane_leaves_others_untouched(self):
        batch = BatchSimulator(n_lanes=3)
        victim = batch.lane(0).schedule(1.0, lambda: None)
        before = [batch.lane_stats(i).copy() for i in range(3)]
        batch.cancel(victim)
        after = [batch.lane_stats(i) for i in range(3)]
        assert after[0]["events_cancelled"] == 1
        for i in (1, 2):
            assert before[i] == after[i], i

    def test_schedule_cohort_attributes_every_listed_lane(self):
        batch = BatchSimulator(n_lanes=3)
        fired = []
        batch.schedule_cohort(0.5, [0, 2], lambda: fired.append(batch.now))
        batch.run()
        assert fired == [0.5]
        assert batch.lane_stats(0)["events_fired"] == 1
        assert batch.lane_stats(1)["events_fired"] == 0
        assert batch.lane_stats(2)["events_fired"] == 1
        assert batch.events_fired == 2  # one callback, two lanes' work

    def test_cancelled_cohort_event_books_every_lane(self):
        batch = BatchSimulator(n_lanes=4)
        handle = batch.schedule_cohort(0.5, [1, 3], lambda: None)
        assert batch.cancel(handle)
        batch.run()
        assert batch.lane_stats(1)["events_cancelled"] == 1
        assert batch.lane_stats(3)["events_cancelled"] == 1
        assert batch.events_fired == 0


class TestSfuFastPathVsOracle:
    """The struct-of-arrays fan-out reproduces the event-driven SFU."""

    @pytest.mark.parametrize("n,seed", [(2, 0), (3, 2), (5, 0)])
    def test_observer_downlink_windows_match(self, n, seed):
        duration = 8.0
        oracle = multi_user_testbed(n).session(
            FACETIME, seed=seed).run(duration)
        oracle_windows = throughput_windows_mbps(
            oracle.capture_of("U1"), Direction.DOWNLINK)
        fast = sfu_cohort_downlink(n, duration, seed=seed, observers=[0])
        fast_windows = fast.observer_windows_mbps[0]
        assert len(fast_windows) == len(oracle_windows)
        assert fast_windows == pytest.approx(oracle_windows, rel=1e-9)

    def test_late_fraction_matches_oracle_buffer(self):
        fast = sfu_cohort_downlink(3, 8.0, seed=0, observers=[0, 1])
        for obs, late in fast.observer_late_fraction.items():
            assert 0.0 <= late <= 1.0


class TestKernelsVsScalarLink:
    """The vectorized service kernels against the event-driven link."""

    def _offer_to_scalar_link(self, times, wires, rate_bps, queue_bytes):
        sim = Simulator()
        link = Link(rate_bps, queue_bytes=queue_bytes)
        dep = np.full(len(times), np.nan)
        accepted = np.zeros(len(times), dtype=bool)

        def offer(i):
            pkt = Packet("10.0.0.2", "10.0.1.2", 1, 2, IPPROTO_UDP,
                         payload=bytes(int(wires[i]) - 28))
            def done(_p, i=i):
                dep[i] = sim.now
            accepted[i] = link.transmit(sim, pkt, done)

        for i, t in enumerate(times):
            sim.schedule_at(float(t), lambda i=i: offer(i))
        sim.run()
        return dep, accepted

    def test_drop_tail_kernel_is_bit_exact(self):
        rng = np.random.default_rng(7)
        times = np.sort(rng.uniform(0.0, 2.0, size=200))
        wires = rng.integers(100, 1500, size=200)
        rate, queue = 1e6, 4000  # slow + tiny queue: force drops
        k_dep, k_acc = drop_tail_departures(times, wires, rate, queue)
        s_dep, s_acc = self._offer_to_scalar_link(times, wires, rate, queue)
        assert np.array_equal(k_acc, s_acc)
        assert np.array_equal(k_dep[k_acc], s_dep[s_acc])  # no tolerance
        assert np.isnan(k_dep[~k_acc]).all()

    def test_fifo_kernel_matches_sequential_recurrence(self):
        rng = np.random.default_rng(11)
        arr = np.sort(rng.uniform(0.0, 1.0, size=500))
        ser = rng.uniform(1e-4, 5e-3, size=500)
        dep = fifo_departures(arr, ser)
        busy = 0.0
        for i in range(len(arr)):
            busy = max(arr[i], busy) + ser[i]
            assert dep[i] == pytest.approx(busy, abs=1e-9), i
        # Idle-at-arrival packets are exact, not just close.
        gaps = np.concatenate(([True], arr[1:] >= dep[:-1]))
        assert np.array_equal(dep[gaps], (arr + ser)[gaps])

    def test_windowed_lane_bytes_matches_scalar_loop(self):
        rng = np.random.default_rng(3)
        n_lanes, n_windows = 4, 5
        ts = rng.uniform(0.0, 7.0, size=300)
        lanes = rng.integers(0, n_lanes, size=300)
        wires = rng.integers(64, 1500, size=300)
        got = windowed_lane_bytes(ts, lanes, wires, n_lanes, 1.0, 1.0,
                                  n_windows)
        want = np.zeros((n_lanes, n_windows))
        for t, lane, w in zip(ts, lanes, wires):
            if t < 1.0:
                continue
            idx = int((t - 1.0) / 1.0)
            if idx < n_windows:
                want[lane, idx] += w
        assert np.array_equal(got, want)


class TestJitterBufferBatch:
    def test_play_batch_matches_scalar_play_per_lane(self):
        rng = np.random.default_rng(19)
        buffer = JitterBuffer(playout_delay_ms=20.0)
        n_lanes = 3
        send, arrival, lanes = [], [], []
        per_lane = []
        for lane in range(n_lanes):
            s = np.sort(rng.uniform(0.0, 5.0, size=120))
            a = s + rng.uniform(0.001, 0.050, size=120)
            per_lane.append(buffer.play(list(zip(s, a))))
            send.append(s)
            arrival.append(a)
            lanes.append(np.full(120, lane))
        reports = buffer.play_batch(
            np.concatenate(send), np.concatenate(arrival),
            np.concatenate(lanes), n_lanes)
        for scalar, batch in zip(per_lane, reports):
            assert batch.frames == scalar.frames
            assert batch.late_frames == scalar.late_frames
            assert batch.late_fraction == scalar.late_fraction
            assert batch.mean_wait_ms == pytest.approx(
                scalar.mean_wait_ms, rel=1e-9)

    def test_play_batch_rejects_empty_lane(self):
        buffer = JitterBuffer(playout_delay_ms=20.0)
        with pytest.raises(ValueError, match="no frames"):
            buffer.play_batch(np.array([0.0]), np.array([0.01]),
                              np.array([1]), 2)
        with pytest.raises(ValueError, match="no lanes"):
            buffer.play_batch(np.array([]), np.array([]), np.array([]), 0)
