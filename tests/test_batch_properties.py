"""Property tests: the batch engine never desyncs its lanes.

Hypothesis drives the cohort engine with random lane counts, schedules,
and cancellations and checks the invariants the golden suite spells out
for fixed inputs:

* global firing order is (time, sequence) — identical to the scalar
  engine — and its projection onto any lane preserves that lane's
  scalar (time, insertion-order) order;
* lanes are isolated: cancelling or scheduling on one lane never
  changes what another lane observes;
* cohort-level accounting is the exact fold of per-lane accounting.
"""

from collections import defaultdict

import pytest
from hypothesis import given, settings, strategies as st

from repro.netsim.batch import BatchSimulator
from repro.netsim.engine import Simulator

# A schedule: per-event (lane, delay) pairs over a small cohort.
lane_events = st.lists(
    st.tuples(st.integers(min_value=0, max_value=4),
              st.floats(min_value=0.0, max_value=50.0, allow_nan=False)),
    min_size=1, max_size=60,
)


class TestOrderingProperties:
    @given(lane_events)
    def test_global_order_is_time_then_sequence(self, events):
        batch = BatchSimulator(n_lanes=5)
        fired = []
        for i, (lane, delay) in enumerate(events):
            batch.schedule(lane, delay,
                           lambda d=delay, i=i: fired.append((d, i)))
        batch.run()
        assert len(fired) == len(events)
        assert fired == sorted(fired)  # time asc, insertion order on ties

    @given(lane_events)
    def test_lane_projection_equals_scalar_order(self, events):
        """Each lane sees exactly what its own scalar engine would."""
        batch = BatchSimulator(n_lanes=5)
        batch_fired = defaultdict(list)
        scalars = [Simulator() for _ in range(5)]
        scalar_fired = defaultdict(list)
        for i, (lane, delay) in enumerate(events):
            batch.schedule(lane, delay,
                           lambda lane=lane, i=i: batch_fired[lane].append(i))
            scalars[lane].schedule(
                delay, lambda lane=lane, i=i: scalar_fired[lane].append(i))
        batch.run()
        for sim in scalars:
            sim.run()
        for lane in range(5):
            assert batch_fired[lane] == scalar_fired[lane], lane

    @given(lane_events, st.floats(min_value=1.0, max_value=40.0,
                                  allow_nan=False))
    def test_run_until_stops_every_lane_at_the_same_clock(self, events,
                                                          until):
        batch = BatchSimulator(n_lanes=5)
        fired = []
        for lane, delay in events:
            batch.schedule(lane, delay, lambda d=delay: fired.append(d))
        batch.run(until=until)
        assert all(d <= until for d in fired)
        assert batch.now == until
        remaining = [d for _lane, d in events if d > until]
        assert batch.pending_events() == len(remaining)


class TestIsolationProperties:
    @given(lane_events, st.data())
    def test_cancellation_on_other_lanes_changes_nothing(self, events, data):
        """Lane 0's firing trace is invariant to other lanes' cancels."""
        def run(cancel_indexes):
            batch = BatchSimulator(n_lanes=5)
            fired = []
            handles = []
            for i, (lane, delay) in enumerate(events):
                handles.append(batch.schedule(
                    lane, delay,
                    lambda lane=lane, i=i: fired.append((lane, i))))
            for i in cancel_indexes:
                batch.cancel(handles[i])
            batch.run()
            return [entry for entry in fired if entry[0] == 0], batch

        victims = [i for i, (lane, _d) in enumerate(events) if lane != 0]
        chosen = data.draw(st.lists(st.sampled_from(victims), unique=True)
                           if victims else st.just([]))
        baseline, _ = run([])
        pruned, batch = run(chosen)
        assert pruned == baseline
        assert batch.lane_stats(0)["events_cancelled"] == 0

    @given(lane_events)
    def test_aggregate_equals_fold_of_lane_counters(self, events):
        batch = BatchSimulator(n_lanes=5)
        handles = []
        for lane, delay in events:
            handles.append(batch.schedule(lane, delay, lambda: None))
        for handle in handles[::3]:  # cancel every third event
            batch.cancel(handle)
        batch.run()
        lanes = [batch.lane_stats(i) for i in range(5)]
        for key in ("events_scheduled", "events_fired", "events_cancelled"):
            assert batch.stats()[key] == sum(s[key] for s in lanes), key
        assert batch.events_scheduled == len(events)
        assert (batch.events_fired + batch.events_cancelled
                == batch.events_scheduled)

    @given(st.integers(min_value=1, max_value=6),
           st.floats(min_value=0.01, max_value=0.5, allow_nan=False))
    def test_periodic_lanes_tick_in_lockstep(self, n_lanes, interval):
        """Identical periodic schedules fire identically on every lane."""
        batch = BatchSimulator(n_lanes=n_lanes)
        ticks = defaultdict(list)
        for lane in range(n_lanes):
            view = batch.lane(lane)
            view.schedule_every(interval,
                                lambda lane=lane: ticks[lane].append(
                                    batch.now),
                                until=2.0)
        batch.run(until=2.0)
        scalar = Simulator()
        expected = []
        scalar.schedule_every(interval, lambda: expected.append(scalar.now),
                              until=2.0)
        scalar.run(until=2.0)
        for lane in range(n_lanes):
            assert ticks[lane] == expected, lane  # bit-identical tick times


class TestCohortEventProperties:
    @given(st.lists(st.sets(st.integers(min_value=0, max_value=4),
                            min_size=1),
                    min_size=1, max_size=20))
    def test_cohort_counters_fold_per_listed_lane(self, memberships):
        batch = BatchSimulator(n_lanes=5)
        fired = [0]
        for i, lanes in enumerate(memberships):
            batch.schedule_cohort(0.1 * (i + 1), sorted(lanes),
                                  lambda: fired.__setitem__(
                                      0, fired[0] + 1))
        batch.run()
        assert fired[0] == len(memberships)  # one callback per event
        for lane in range(5):
            expected = sum(1 for lanes in memberships if lane in lanes)
            assert batch.lane_stats(lane)["events_fired"] == expected, lane

    def test_cohort_lane_out_of_range_rejected(self):
        batch = BatchSimulator(n_lanes=2)
        with pytest.raises(IndexError):
            batch.schedule_cohort(0.1, [0, 2], lambda: None)
        with pytest.raises(ValueError):
            batch.schedule_cohort(0.1, [], lambda: None)


class TestSessionCohortProperties:
    """Random cohorts of real sessions stay equal to scalar runs."""

    @settings(max_examples=5, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=40),
                    min_size=1, max_size=3))
    def test_cohort_capture_bytes_equal_scalar(self, seeds):
        from repro.core.testbed import default_two_user_testbed
        from repro.netsim.capture import Direction
        from repro.vca.cohort import CohortRunner
        from repro.vca.profiles import FACETIME

        duration = 2.0
        scalar_bytes = []
        for seed in seeds:
            result = default_two_user_testbed().session(
                FACETIME, seed=seed).run(duration)
            scalar_bytes.append(
                result.capture_of("U1").total_bytes(Direction.DOWNLINK))
        runner = CohortRunner()
        for seed in seeds:
            runner.add(lambda sim, s=seed: default_two_user_testbed().session(
                FACETIME, seed=s, sim=sim))
        for result, want in zip(runner.run(duration), scalar_bytes):
            assert (result.capture_of("U1").total_bytes(Direction.DOWNLINK)
                    == want)
