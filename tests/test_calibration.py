"""The calibration constants must stay mutually consistent with the paper."""

import math

from repro import calibration


class TestFrameTiming:
    def test_deadline_matches_target_fps(self):
        assert math.isclose(
            calibration.FRAME_DEADLINE_MS, 1000.0 / 90.0, rel_tol=1e-9
        )

    def test_deadline_near_11_ms(self):
        # The paper quotes ~11 ms / 11.1 ms for the 90 FPS budget.
        assert 11.0 < calibration.FRAME_DEADLINE_MS < 11.2


class TestTriangleTiers:
    def test_viewport_reduction_is_extreme(self):
        assert calibration.VIEWPORT_CULLED_TRIANGLES == 36
        assert calibration.PERSONA_TRIANGLES == 78_030

    def test_foveated_reduction_fraction(self):
        # Sec. 4.4: foveated rendering cuts triangles by 73%.
        reduction = 1 - calibration.FOVEATED_TRIANGLES / calibration.PERSONA_TRIANGLES
        assert abs(reduction - 0.73) < 0.01

    def test_distance_reduction_fraction(self):
        # Sec. 4.4: distance LOD cuts triangles by 42%.
        reduction = 1 - calibration.DISTANCE_TRIANGLES / calibration.PERSONA_TRIANGLES
        assert abs(reduction - 0.42) < 0.01


class TestGpuAnchors:
    def test_viewport_gpu_reduction(self):
        # Sec. 4.4: 59% GPU-time reduction out of viewport.
        reduction = 1 - calibration.GPU_MS_VIEWPORT[0] / calibration.GPU_MS_BASELINE[0]
        assert abs(reduction - 0.59) < 0.01

    def test_foveated_gpu_reduction(self):
        reduction = 1 - calibration.GPU_MS_FOVEATED[0] / calibration.GPU_MS_BASELINE[0]
        assert abs(reduction - 0.39) < 0.01

    def test_distance_gpu_reduction(self):
        reduction = 1 - calibration.GPU_MS_DISTANCE[0] / calibration.GPU_MS_BASELINE[0]
        assert abs(reduction - 0.40) < 0.01

    def test_scalability_gpu_growth(self):
        # Sec. 4.5: +34.9% GPU from 2 to 5 users.
        growth = calibration.GPU_MS_FIVE_USERS[0] / calibration.GPU_MS_TWO_USERS[0] - 1
        assert abs(growth - 0.349) < 0.005

    def test_scalability_cpu_growth(self):
        # Sec. 4.5: +19.2% CPU from 2 to 5 users.
        growth = calibration.CPU_MS_FIVE_USERS[0] / calibration.CPU_MS_TWO_USERS[0] - 1
        assert abs(growth - 0.192) < 0.005


class TestSemanticConstants:
    def test_keypoint_arithmetic(self):
        # Sec. 4.3: 32 (mouth & eyes) + 2 x 21 (hands) = 74.
        assert calibration.SEMANTIC_KEYPOINTS_TOTAL == 74
        assert (
            calibration.FACIAL_SEMANTIC_KEYPOINTS
            + 2 * calibration.HAND_KEYPOINTS
            == calibration.SEMANTIC_KEYPOINTS_TOTAL
        )

    def test_spatial_persona_under_700_kbps(self):
        # Intro: bandwidth consumption < 0.7 Mbps.
        assert calibration.SPATIAL_PERSONA_MBPS < 0.7

    def test_spatial_cheaper_than_every_2d_persona(self):
        for other in (
            calibration.FACETIME_2D_MBPS,
            calibration.ZOOM_MBPS,
            calibration.WEBEX_MBPS,
            calibration.TEAMS_MBPS,
        ):
            assert calibration.SPATIAL_PERSONA_MBPS < other


class TestTable1Constants:
    def test_matrix_shape(self):
        assert len(calibration.TABLE1_COLUMNS) == 10
        for region in ("W", "M", "E"):
            assert len(calibration.TABLE1_RTT_MS[region]) == 10

    def test_server_counts_match_columns(self):
        from collections import Counter

        per_vca = Counter(vca for vca, _ in calibration.TABLE1_COLUMNS)
        assert dict(per_vca) == calibration.SERVER_COUNTS

    def test_diagonal_cells_are_small(self):
        # Users probing their own region's server see ~6-14 ms.
        assert calibration.TABLE1_RTT_MS["W"][0] < 15  # W user, FaceTime W
        assert calibration.TABLE1_RTT_MS["M"][1] < 15  # M user, FaceTime M1
        assert calibration.TABLE1_RTT_MS["E"][3] < 15  # E user, FaceTime E


class TestPaperStat:
    def test_within_accepts_close_value(self):
        stat = calibration.PAPER_STATS["gpu_ms_baseline"]
        assert stat.within(stat.mean + stat.std)

    def test_within_rejects_far_value(self):
        stat = calibration.PAPER_STATS["gpu_ms_baseline"]
        assert not stat.within(stat.mean + 10 * stat.std)

    def test_all_stats_have_sources(self):
        for stat in calibration.PAPER_STATS.values():
            assert stat.source
