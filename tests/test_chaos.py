"""Chaos-test harness: the crash-safety layer under deliberate abuse.

Every test here injects a real failure — SIGKILLed workers, hung cells,
poisoned tracebacks, journals truncated mid-append, a ``kill -9`` of the
whole CLI process — and asserts the acceptance contract from the issue:
the campaign still completes (directly or via ``--resume``), the final
CSV is **byte-identical** to an undisturbed serial cold run, and the run
manifest records every retry, fallback, and quarantined cell.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.core.campaign import Campaign
from repro.core.errors import CellFailure
from repro.core.journal import STATUS_RESUMED, RunJournal
from repro.core.parallel import CellTask, TaskRunner

#: Two VCAs, one user count: four fast cells with distinct records.
GRID = dict(vcas=("Zoom", "Webex"), user_counts=(2,), duration_s=2.0,
            repeats=2)


def _campaign() -> Campaign:
    return Campaign.grid(**GRID, base_seed=11)


@pytest.fixture(scope="module")
def golden_csv(tmp_path_factory) -> bytes:
    """The undisturbed serial cold run every chaos path must reproduce."""
    campaign = _campaign()
    campaign.run(jobs=1)
    path = tmp_path_factory.mktemp("golden") / "golden.csv"
    campaign.to_csv(path)
    return path.read_bytes()


# ---------------------------------------------------------------------------
# cell functions (module-level: they cross process boundaries)
# ---------------------------------------------------------------------------

def _hang_once(sentinel: str, value: int) -> int:
    """Sleeps far past any watchdog deadline on the first call only."""
    path = Path(sentinel)
    if not path.exists():
        path.write_text("hung")
        time.sleep(30.0)
    return value * 2


def _sigkill_in_worker(parent_pid: int, value: int) -> int:
    """SIGKILLs itself whenever it runs in a worker process."""
    if os.getpid() != parent_pid:
        os.kill(os.getpid(), signal.SIGKILL)
    return value * 2


def _sigkill_once(sentinel: str, value: int) -> int:
    """SIGKILLs its worker on the first call, succeeds on retry."""
    path = Path(sentinel)
    if not path.exists():
        path.write_text("killed")
        os.kill(os.getpid(), signal.SIGKILL)
    return value * 2


def _hang_forever(value: int) -> int:
    time.sleep(30.0)
    return value


def _traceback_bomb(value: int) -> int:
    raise RuntimeError(f"injected traceback for cell {value}")


def _double(value: int) -> int:
    return value * 2


# ---------------------------------------------------------------------------
# watchdog: hung workers are killed, not waited on
# ---------------------------------------------------------------------------

class TestWatchdog:
    def test_hung_cell_killed_and_retried(self, tmp_path):
        """A cell that hangs once is killed at its deadline and retried."""
        runner = TaskRunner(jobs=2, retries=2, timeout=1.0)
        tasks = [
            CellTask(name="hang-once", fn=_hang_once,
                     kwargs={"sentinel": str(tmp_path / "hung"),
                             "value": 21}),
            CellTask(name="fine", fn=_double, kwargs={"value": 5}),
        ]
        started = time.monotonic()
        assert runner.run(tasks) == [42, 10]
        # The watchdog fired (instead of sleeping out the 30 s hang).
        assert time.monotonic() - started < 20.0
        assert runner.stats.timeouts >= 1
        assert runner.stats.retries >= 1
        hung = [c for c in runner.manifest.cells if c.name == "hang-once"]
        assert hung[0].timeouts >= 1

    def test_permanent_hang_fails_with_timeout_error(self, tmp_path):
        """A cell that always hangs exhausts its budget as a transient."""
        runner = TaskRunner(jobs=2, retries=0, timeout=0.5, failfast=False)
        results = runner.run([
            CellTask(name="hang", fn=_hang_forever, kwargs={"value": 1}),
            CellTask(name="fine", fn=_double, kwargs={"value": 4}),
        ])
        assert isinstance(results[0], CellFailure)
        assert results[0].error_type == "CellTimeoutError"
        assert results[0].category == "transient"
        assert results[1] == 8
        assert runner.stats.timeouts == 1


# ---------------------------------------------------------------------------
# SIGKILL: dead workers retry; persistent death falls back loudly
# ---------------------------------------------------------------------------

class TestSigkill:
    def test_sigkilled_worker_is_retried(self, tmp_path):
        runner = TaskRunner(jobs=2, retries=2)
        tasks = [
            CellTask(name="victim", fn=_sigkill_once,
                     kwargs={"sentinel": str(tmp_path / "kill"),
                             "value": 21}),
            CellTask(name="fine", fn=_double, kwargs={"value": 3}),
        ]
        assert runner.run(tasks) == [42, 6]
        assert runner.stats.retries >= 1

    def test_persistent_sigkill_falls_back_inline_and_is_recorded(self):
        """Satellite (c): the inline fallback is warned about and lands
        in the manifest — never silent."""
        runner = TaskRunner(jobs=2, retries=1)
        tasks = [CellTask(name="always-dies", fn=_sigkill_in_worker,
                          kwargs={"parent_pid": os.getpid(), "value": 21})]
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert runner.run(tasks) == [42]
        assert runner.stats.fallbacks == 1
        fallbacks = runner.manifest.fallbacks()
        assert [c.name for c in fallbacks] == ["always-dies"]
        assert fallbacks[0].fallback is True
        assert fallbacks[0].status == "ok"


# ---------------------------------------------------------------------------
# traceback injection
# ---------------------------------------------------------------------------

class TestTracebackInjection:
    def test_injected_traceback_fails_fast_across_pool(self):
        runner = TaskRunner(jobs=2, retries=3)
        with pytest.raises(RuntimeError, match="injected traceback"):
            runner.run([CellTask(name="bomb", fn=_traceback_bomb,
                                 kwargs={"value": 9})])
        assert runner.stats.retries == 0  # deterministic: no retry burned

    def test_injected_traceback_recorded_in_continue_mode(self):
        runner = TaskRunner(jobs=2, failfast=False)
        results = runner.run([
            CellTask(name="bomb", fn=_traceback_bomb, kwargs={"value": 9}),
            CellTask(name="fine", fn=_double, kwargs={"value": 9}),
        ])
        assert isinstance(results[0], CellFailure)
        assert results[0].error_type == "RuntimeError"
        assert "injected traceback" in results[0].message
        assert results[1] == 18
        assert runner.manifest.failed()[0].name == "bomb"


# ---------------------------------------------------------------------------
# journal chaos: resume must be byte-identical through every mutilation
# ---------------------------------------------------------------------------

def _run_with_journal(journal: RunJournal, resume: bool,
                      csv_path: Path) -> Campaign:
    campaign = _campaign()
    campaign.run(jobs=2, journal=journal, resume=resume)
    campaign.to_csv(csv_path)
    return campaign


class TestJournalChaos:
    def test_resume_after_partial_journal(self, golden_csv, tmp_path):
        """Crash after some cells: resume replays them, runs the rest."""
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            _run_with_journal(journal, False, tmp_path / "full.csv")
        # Simulate dying after the first two cells: keep header + 2 entries.
        lines = path.read_text().splitlines(keepends=True)
        path.write_text("".join(lines[:3]))
        with RunJournal(path) as journal:
            campaign = _run_with_journal(journal, True,
                                         tmp_path / "resumed.csv")
        assert (tmp_path / "resumed.csv").read_bytes() == golden_csv
        stats = campaign.last_run_stats
        assert stats.resumed == 2
        assert stats.executed == len(campaign.tasks()) - 2
        resumed = campaign.last_manifest.by_status(STATUS_RESUMED)
        assert len(resumed) == 2

    def test_torn_tail_is_skipped_and_reexecuted(self, golden_csv,
                                                 tmp_path):
        """kill -9 mid-append tears the last line; it costs one cell."""
        path = tmp_path / "torn.jsonl"
        with RunJournal(path) as journal:
            _run_with_journal(journal, False, tmp_path / "full.csv")
        blob = path.read_bytes()
        path.write_bytes(blob[:-40])  # rip the tail mid-JSON
        with RunJournal(path) as journal:
            campaign = _run_with_journal(journal, True,
                                         tmp_path / "resumed.csv")
            assert journal.torn_lines >= 1
        assert (tmp_path / "resumed.csv").read_bytes() == golden_csv
        assert campaign.last_run_stats.executed >= 1  # the torn cell reran

    def test_resume_with_missing_journal_runs_everything(self, golden_csv,
                                                         tmp_path):
        with RunJournal(tmp_path / "never-written.jsonl") as journal:
            campaign = _run_with_journal(journal, True,
                                         tmp_path / "out.csv")
        assert (tmp_path / "out.csv").read_bytes() == golden_csv
        assert campaign.last_run_stats.resumed == 0
        assert campaign.last_run_stats.executed == len(campaign.tasks())

    def test_undisturbed_resume_replays_all_cells(self, golden_csv,
                                                  tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            _run_with_journal(journal, False, tmp_path / "first.csv")
        with RunJournal(path) as journal:
            campaign = _run_with_journal(journal, True,
                                         tmp_path / "second.csv")
        assert (tmp_path / "second.csv").read_bytes() == golden_csv
        stats = campaign.last_run_stats
        assert stats.resumed == len(campaign.tasks())
        assert stats.executed == 0


# ---------------------------------------------------------------------------
# end-to-end: kill -9 the CLI itself, then --resume
# ---------------------------------------------------------------------------

def _cli_env(tmp_path: Path) -> dict:
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
    return env


def _cli_cmd(csv_path: Path, journal: Path, jobs: int,
             resume: bool = False) -> list:
    cmd = [sys.executable, "-m", "repro", "campaign",
           "--vcas", "Zoom", "Webex", "--users", "2",
           "--duration", "2", "--repeats", "2", "--seed", "11",
           "--jobs", str(jobs), "--no-cache",
           "--journal", str(journal), "--csv", str(csv_path)]
    if resume:
        cmd.append("--resume")
    return cmd


@pytest.mark.slow
class TestEndToEndKill9:
    def test_kill9_then_resume_matches_serial(self, golden_csv, tmp_path):
        """The acceptance test, literally: SIGKILL the campaign process
        mid-run, ``--resume``, and the CSV must match the serial run."""
        env = _cli_env(tmp_path)
        journal = tmp_path / "run.jsonl"

        victim = subprocess.Popen(
            _cli_cmd(tmp_path / "first.csv", journal, jobs=2),
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        time.sleep(1.0)  # let it start (and maybe finish) some cells
        if victim.poll() is None:
            victim.kill()  # SIGKILL: no handlers, no flushing, no mercy
        victim.wait(timeout=30)

        done = subprocess.run(
            _cli_cmd(tmp_path / "final.csv", journal, jobs=2, resume=True),
            env=env, capture_output=True, text=True, timeout=300,
        )
        assert done.returncode == 0, done.stderr
        assert (tmp_path / "final.csv").read_bytes() == golden_csv

    def test_sigterm_prints_resume_hint(self, tmp_path):
        """Satellite (b): graceful SIGTERM exits 130 with a resume hint."""
        env = _cli_env(tmp_path)
        journal = tmp_path / "run.jsonl"
        victim = subprocess.Popen(
            _cli_cmd(tmp_path / "first.csv", journal, jobs=2),
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
            text=True,
        )
        # The journal file is created inside the graceful-interrupt block,
        # so its existence proves the SIGTERM handler is installed.
        deadline = time.monotonic() + 60
        while (time.monotonic() < deadline and victim.poll() is None
               and not journal.exists()):
            time.sleep(0.02)
        if victim.poll() is None:
            victim.send_signal(signal.SIGTERM)
        _, stderr = victim.communicate(timeout=60)
        if victim.returncode == 130:
            assert "resume with the same command plus: --resume" in stderr
        else:
            # Lost the race: the campaign finished before (or while) the
            # signal landed.  The resume contract below still applies.
            assert victim.returncode in (0, -signal.SIGTERM)
        # Either way the journal lets a resume finish cleanly.
        done = subprocess.run(
            _cli_cmd(tmp_path / "final.csv", journal, jobs=2, resume=True),
            env=env, capture_output=True, text=True, timeout=300,
        )
        assert done.returncode == 0, done.stderr
