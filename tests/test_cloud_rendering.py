"""The A6 cloud-rendering tradeoff experiment."""

import pytest

from repro import calibration
from repro.experiments import cloud_rendering


@pytest.fixture(scope="module")
def result():
    return cloud_rendering.run(duration_s=8.0, seed=0)


class TestCloudRendering:
    def test_local_holds_to_the_cap(self, result):
        by_users = {p.n_users: p for p in result.points}
        for n in (2, 3, 4, 5):
            assert by_users[n].local_effective_fps > 85.0

    def test_local_collapses_past_the_cap(self, result):
        by_users = {p.n_users: p for p in result.points}
        assert by_users[6].local_effective_fps < 80.0
        assert by_users[8].local_gpu_ms > calibration.FRAME_DEADLINE_MS * 0.9

    def test_cloud_removes_the_ceiling(self, result):
        assert result.cloud_removes_gpu_ceiling()
        by_users = {p.n_users: p for p in result.points}
        assert by_users[8].cloud_effective_fps == pytest.approx(90.0, abs=1.0)

    def test_cloud_pays_in_latency(self, result):
        assert result.cloud_costs_interactivity()
        by_users = {p.n_users: p for p in result.points}
        # Local stays under the Sec. 4.3 bound; cloud carries the RTT.
        assert by_users[5].local_viewport_latency_ms < \
            calibration.DISPLAY_LATENCY_DIFF_BOUND_MS
        assert by_users[5].cloud_viewport_latency_ms > \
            2 * calibration.DISPLAY_LATENCY_DIFF_BOUND_MS

    def test_cloud_pays_in_bandwidth_at_small_scale(self, result):
        assert result.cloud_costs_bandwidth()

    def test_semantic_downlink_grows_video_does_not(self, result):
        by_users = {p.n_users: p for p in result.points}
        assert by_users[8].local_downlink_mbps > \
            by_users[2].local_downlink_mbps
        assert by_users[8].cloud_downlink_mbps == \
            by_users[2].cloud_downlink_mbps

    def test_table_renders(self, result):
        table = result.format_table()
        assert "local/cloud" in table
        assert len(table.splitlines()) == len(result.points) + 1
