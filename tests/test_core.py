"""Testbed construction and the study runner."""

import pytest

from repro.core.study import Study, repeat_experiment
from repro.core.testbed import default_two_user_testbed, multi_user_testbed
from repro.core.testbed import Testbed as CoreTestbed
from repro.devices.models import MacBook, VisionPro
from repro.geo.regions import city
from repro.vca.profiles import FACETIME
from repro.vca.session import Participant


class TestTestbed:
    def test_default_two_users(self):
        testbed = default_two_user_testbed()
        assert [p.user_id for p in testbed.participants] == ["U1", "U2"]
        assert all(d.supports_spatial_persona for d in testbed.devices)

    def test_u2_device_override(self):
        testbed = default_two_user_testbed(u2_device=MacBook())
        assert not testbed.devices[1].supports_spatial_persona

    def test_session_factory(self):
        session = default_two_user_testbed().session(FACETIME, seed=1)
        assert session.profile is FACETIME

    def test_duplicate_user_ids_rejected(self):
        p = Participant("U1", VisionPro(), city("dallas"))
        with pytest.raises(ValueError):
            CoreTestbed([p, p])

    def test_multi_user_counts(self):
        for n in (2, 3, 5):
            assert len(multi_user_testbed(n).participants) == n

    def test_multi_user_needs_cities(self):
        with pytest.raises(ValueError):
            multi_user_testbed(4, cities=["dallas"])

    def test_too_few_users_rejected(self):
        with pytest.raises(ValueError):
            multi_user_testbed(1)


class TestStudyRunner:
    def test_repeat_runs_distinct_seeds(self):
        seen = []
        repeat_experiment("x", seen.append, repeats=5, base_seed=10)
        assert seen == [10, 11, 12, 13, 14]

    def test_repeated_summary(self):
        result = repeat_experiment("x", lambda seed: float(seed), repeats=5)
        assert result.summary(lambda v: v).mean == 2.0
        assert result.n == 5

    def test_zero_repeats_rejected(self):
        with pytest.raises(ValueError):
            repeat_experiment("x", lambda s: s, repeats=0)

    def test_study_collects_by_name(self):
        study = Study("demo", repeats=2)
        study.run("exp-a", lambda seed: seed)
        study.run("exp-b", lambda seed: seed * 2)
        assert study.experiment_names() == ["exp-a", "exp-b"]
        assert study.get("exp-b").n == 2
