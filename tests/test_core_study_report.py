"""Coverage for `repro.core.study` and `repro.report` — the full export path.

The report is the repo's deliverable: every section, generated once
serially and once through the sharded/cached path, must be the same
string, and the CLI must write it to disk unchanged.
"""

from __future__ import annotations

import pytest

from repro import calibration
from repro.cli import build_parser, main
from repro.core.cache import ResultCache
from repro.core.study import Repeated, Study, repeat_experiment
from repro.report import ReportSettings, generate_report

#: Smallest settings every section tolerates (fig6's network half runs at
#: duration/2 and needs >2 s of windows).
_SETTINGS = dict(duration_s=6.0, repeats=1, seed=3)

_SECTIONS = (
    "## Table 1 — server RTT matrix (ms)",
    "## Sec. 4.1 — protocols, P2P, anycast",
    "## Fig. 4 — two-party uplink throughput",
    "## Sec. 4.3 — what is being delivered?",
    "## Sec. 4.3 — rate adaptation",
    "## Fig. 5 — visibility-aware optimizations",
    "## Fig. 6 — scalability",
    "## Ablations",
    "## Placement study — global demand x selection policy",
    "## Fault gauntlet — correlated domains at fleet scale",
)


class TestStudy:
    def test_repeat_experiment_hands_out_consecutive_seeds(self):
        seen = []

        def fn(seed: int) -> int:
            seen.append(seed)
            return seed * seed

        result = repeat_experiment("squares", fn, repeats=4, base_seed=10)
        assert seen == [10, 11, 12, 13]
        assert result.n == 4
        assert result.results == [100, 121, 144, 169]

    def test_repeat_experiment_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            repeat_experiment("nope", lambda seed: seed, repeats=0)

    def test_repeated_values_and_summary(self):
        repeated = Repeated("r", [{"x": 1.0}, {"x": 3.0}])
        assert repeated.values(lambda r: r["x"]) == [1.0, 3.0]
        assert repeated.summary(lambda r: r["x"]).mean == 2.0

    def test_study_collects_in_insertion_order(self):
        study = Study("s", repeats=2, base_seed=5)
        study.run("first", lambda seed: seed)
        study.run("second", lambda seed: -seed)
        assert study.experiment_names() == ["first", "second"]
        assert study.get("first").results == [5, 6]
        assert study.get("second").results == [-5, -6]

    def test_study_defaults_follow_the_paper(self):
        assert Study("s").repeats == calibration.MIN_REPEATS


@pytest.fixture(scope="module")
def serial_report() -> str:
    return generate_report(ReportSettings(**_SETTINGS))


class TestReport:
    def test_every_section_present(self, serial_report):
        for heading in _SECTIONS:
            assert heading in serial_report

    def test_quick_settings_are_shorter(self):
        quick = ReportSettings.quick()
        assert quick.duration_s < ReportSettings().duration_s
        assert quick.jobs == 1 and quick.cache is None

    def test_sharded_cached_report_identical(self, serial_report, tmp_path):
        cold = generate_report(ReportSettings(
            **_SETTINGS, jobs=2, cache=ResultCache(tmp_path)
        ))
        assert cold == serial_report
        # Replay: the sweep-backed sections come straight off disk.
        replay_cache = ResultCache(tmp_path)
        warm = generate_report(ReportSettings(
            **_SETTINGS, jobs=1, cache=replay_cache
        ))
        assert warm == serial_report
        assert replay_cache.stats.hits > 0
        assert replay_cache.stats.misses == 0


class TestCli:
    def test_parser_accepts_sweep_flags(self):
        args = build_parser().parse_args(
            ["campaign", "--jobs", "4", "--no-cache", "--users", "2",
             "--vcas", "Zoom"]
        )
        assert args.jobs == 4 and args.no_cache
        args = build_parser().parse_args(["reproduce", "--jobs", "2"])
        assert args.command == "reproduce"
        args = build_parser().parse_args(["resilience", "--no-cache"])
        assert args.no_cache

    def test_report_subcommand_has_no_sweep_flags(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report", "--jobs", "2"])

    def test_campaign_cli_end_to_end(self, tmp_path, capsys):
        csv_path = tmp_path / "records.csv"
        code = main([
            "campaign", "--vcas", "Zoom", "--users", "2", "--duration", "3",
            "--repeats", "1", "--jobs", "2", "--cache-dir",
            str(tmp_path / "cache"), "--csv", str(csv_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Zoom" in out and "hit rate" in out
        assert csv_path.read_text().startswith("vca,n_users")
        # Second run replays entirely from the cache.
        code = main([
            "campaign", "--vcas", "Zoom", "--users", "2", "--duration", "3",
            "--repeats", "1", "--cache-dir", str(tmp_path / "cache"),
        ])
        assert code == 0
        assert "100% hit rate" in capsys.readouterr().out
