"""Cross-traffic sources, anchor validation, and the QoE study."""

import pytest

from repro.analysis.comparison import AnchorCheck, format_report
from repro.experiments import qoe_study
from repro.geo.regions import city
from repro.netsim.crosstraffic import BulkTransferSource, OnOffBurstSource
from repro.netsim.engine import Simulator
from repro.netsim.network import Network
from repro.netsim.node import Host
from repro.netsim.wifi import WiFiAccessPoint


def constrained_pair(ap_mbps=30.0):
    sim = Simulator()
    network = Network(sim)
    ap = WiFiAccessPoint(throughput_mbps=ap_mbps)
    a = Host("10.0.0.2", city("san jose"))
    b = Host("10.0.1.2", city("dallas"))
    network.attach(a, ap=ap)
    network.attach(b)
    b.bind(58000, lambda p: None)
    b.bind(58100, lambda p: None)
    return sim, network, ap, a, b


class TestBulkTransfer:
    def test_backs_off_under_congestion(self):
        sim, network, ap, a, b = constrained_pair(ap_mbps=30.0)
        bulk = BulkTransferSource(rate_mbps=50.0, seed=0)
        bulk.attach(sim, a, b.address)
        sim.run(until=5.0)
        assert bulk.packets_dropped > 0
        assert bulk.rate_mbps < 50.0
        achieved = ap.uplink.stats.bytes_sent * 8 / 5.0 / 1e6
        assert achieved < 30.0

    def test_uncongested_keeps_rate(self):
        sim, network, ap, a, b = constrained_pair(ap_mbps=300.0)
        bulk = BulkTransferSource(rate_mbps=20.0, seed=0)
        bulk.attach(sim, a, b.address)
        sim.run(until=3.0)
        assert bulk.packets_dropped == 0
        assert bulk.rate_mbps == 20.0

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            BulkTransferSource(rate_mbps=0)

    def test_persona_survives_heavy_cross_traffic(self):
        # The semantic stream is tiny; even a near-saturating bulk flow on
        # the same 300 Mbps AP leaves it intact.
        from repro.core.testbed import default_two_user_testbed
        from repro.vca.profiles import FACETIME

        session = default_two_user_testbed().session(FACETIME, seed=0)
        sink = Host("10.9.9.2", city("dallas"))
        session.network.attach(sink)
        sink.bind(58000, lambda p: None)
        BulkTransferSource(rate_mbps=280.0, seed=1).attach(
            session.sim, session.host_of("U1"), sink.address
        )
        result = session.run(8.0)
        stats = result.receiver_of("U2").stats[result.addresses["U1"]]
        assert stats.availability() > 0.95


class TestOnOffBurst:
    def test_produces_on_and_off_phases(self):
        sim, network, ap, a, b = constrained_pair(ap_mbps=300.0)
        source = OnOffBurstSource(burst_mbps=20.0, mean_on_s=0.3,
                                  mean_off_s=0.3, seed=0)
        cap = network.start_capture(a.address)
        source.attach(sim, a, b.address)
        sim.run(until=6.0)
        assert source.packets_sent > 0
        # Mean rate must sit well below the burst rate (off periods).
        mean_mbps = cap.total_bytes() * 8 / 6.0 / 1e6
        assert mean_mbps < 0.8 * 20.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            OnOffBurstSource(burst_mbps=0)
        with pytest.raises(ValueError):
            OnOffBurstSource(mean_on_s=0)


class TestAnchorCheck:
    def test_within_band(self):
        check = AnchorCheck("x", "Fig. 5", measured=6.6, paper_mean=6.55,
                            paper_std=0.11)
        assert check.within_band
        assert check.error == pytest.approx(0.05)

    def test_outside_band(self):
        check = AnchorCheck("x", "Fig. 5", measured=9.0, paper_mean=6.55,
                            paper_std=0.11)
        assert not check.within_band

    def test_report_formatting(self):
        checks = [
            AnchorCheck("a", "s", 1.0, 1.0, 0.1),
            AnchorCheck("b", "s", 9.0, 1.0, 0.1),
        ]
        report = format_report(checks)
        assert "1/2 anchors within band" in report
        assert "OFF" in report


class TestQoeStudy:
    @pytest.fixture(scope="class")
    def outcomes(self):
        return qoe_study.run()

    def test_three_scenarios(self, outcomes):
        assert len(outcomes) == 3

    def test_us_scenarios_high_qoe_either_way(self, outcomes):
        for outcome in outcomes[:2]:
            assert outcome.initiator_nearest_qoe > 0.9
            assert outcome.worst_one_way_ms < 100.0

    def test_intercontinental_needs_geo_distribution(self, outcomes):
        world = outcomes[2]
        # Sec. 4.1: one-way delay across continents exceeds the 100 ms
        # threshold; geo-distribution recovers part of the QoE.
        assert world.worst_one_way_ms > 100.0
        assert world.initiator_nearest_qoe < 0.9
        assert world.geo_distribution_helps

    def test_table_renders(self, outcomes):
        table = qoe_study.format_table(outcomes)
        assert "Intercontinental" in table
