"""Device models and sensor capture simulation."""

import pytest

from repro import calibration
from repro.capture.enrollment import EnrollmentError, PersonaEnrollment
from repro.capture.rgbd import RgbdCamera
from repro.capture.tracking import InCallTracker, TrackingError
from repro.devices.models import (
    CameraKind,
    DeviceClass,
    IPad,
    IPhone,
    MacBook,
    VisionPro,
    all_vision_pro,
)


class TestDevices:
    def test_vision_pro_has_full_camera_suite(self):
        # Fig. 2: main, tracking, TrueDepth, downward, internal cameras.
        assert VisionPro().cameras == frozenset(CameraKind)

    def test_vision_pro_display_is_90_fps(self):
        assert VisionPro().display_fps == calibration.TARGET_FPS

    def test_only_vision_pro_supports_spatial_persona(self):
        assert VisionPro().supports_spatial_persona
        for factory in (MacBook, IPad, IPhone):
            assert not factory().supports_spatial_persona

    def test_all_vision_pro_predicate(self):
        assert all_vision_pro((VisionPro(), VisionPro()))
        assert not all_vision_pro((VisionPro(), MacBook()))

    def test_iphone_has_truedepth_but_no_spatial(self):
        phone = IPhone()
        assert CameraKind.TRUEDEPTH in phone.cameras
        assert not phone.supports_spatial_persona

    def test_device_classes_distinct(self):
        classes = {d().device_class for d in (VisionPro, MacBook, IPad, IPhone)}
        assert len(classes) == 4
        assert classes == set(DeviceClass)


class TestEnrollment:
    def test_vision_pro_enrolls_persona(self):
        persona = PersonaEnrollment(VisionPro()).enroll("u1")
        assert persona.triangle_count == calibration.PERSONA_TRIANGLES

    def test_macbook_cannot_enroll(self):
        with pytest.raises(EnrollmentError):
            PersonaEnrollment(MacBook()).enroll("u1")

    def test_reconstructor_binds_to_mesh(self):
        enrollment = PersonaEnrollment(VisionPro())
        persona = enrollment.enroll("u1")
        reconstructor = enrollment.build_reconstructor(persona)
        assert reconstructor.template is persona.mesh

    def test_seeds_give_distinct_personas(self):
        import numpy as np

        e = PersonaEnrollment(VisionPro())
        a = e.enroll("u1", seed=0)
        b = e.enroll("u2", seed=1)
        assert not np.allclose(a.mesh.vertices, b.mesh.vertices)


class TestTracking:
    def test_vision_pro_tracks(self):
        tracker = InCallTracker(VisionPro(), seed=0)
        frames = list(tracker.frames(10))
        assert len(frames) == 10
        assert frames[0].semantic_points().shape == (74, 3)

    def test_macbook_cannot_track(self):
        with pytest.raises(TrackingError):
            InCallTracker(MacBook())


class TestRgbdCamera:
    def test_default_matches_paper_capture(self):
        camera = RgbdCamera(seed=0)
        frames = camera.record(50)
        assert len(frames) == 50

    def test_paper_default_length(self):
        assert calibration.RGBD_CAPTURE_FRAMES == 2000

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            RgbdCamera().record(0)
