"""Distributed chaos harness: the fleet under deliberate abuse.

The ISSUE 6 acceptance test, literally: run a campaign across worker
processes, SIGKILL one while it holds a lease, SIGSTOP another past the
heartbeat deadline (then SIGCONT it so it comes back as a zombie), and
assert exactly-once cell effects — every cell has exactly one commit
marker, the takeover happened (a fencing token moved past 1), the
zombie's late commit was fenced, and the merged CSV is byte-identical
to an undisturbed serial run.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.core.campaign import Campaign
from repro.core.dist.queue import WorkQueue
from repro.core.dist.store import SEP, layout

#: Two VCAs, one user count, two repeats: four cells, each slow enough
#: (~1 s wall) that signals reliably land mid-lease.
GRID = dict(vcas=("Zoom", "Webex"), user_counts=(2,), duration_s=4.0,
            repeats=2)


def _campaign() -> Campaign:
    return Campaign.grid(**GRID, base_seed=23)


@pytest.fixture(scope="module")
def golden_csv(tmp_path_factory) -> bytes:
    """The undisturbed serial run every distributed path must reproduce."""
    campaign = _campaign()
    campaign.run(jobs=1)
    path = tmp_path_factory.mktemp("golden") / "golden.csv"
    campaign.to_csv(path)
    return path.read_bytes()


def _worker_env() -> dict:
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _spawn_worker(store: Path, worker_id: str, **extra) -> subprocess.Popen:
    cmd = [sys.executable, "-m", "repro", "worker", "--store", str(store),
           "--id", worker_id, "--poll", "0.05",
           "--heartbeat-interval", "0.2", "--idle-exit", "30", "--quiet"]
    for flag, value in extra.items():
        cmd += [f"--{flag.replace('_', '-')}", str(value)]
    return subprocess.Popen(cmd, env=_worker_env(), stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True)


def _active_owner_of(store, worker_id: str):
    """The active-lease path held by ``worker_id``, if any."""
    suffix = f"{SEP}{worker_id}.json"
    try:
        for path in store.active_dir.iterdir():
            if path.name.endswith(suffix):
                return path
    except OSError:
        pass
    return None


def _run_distributed(store: Path, tmp_path: Path,
                     worker_wait_s: float = 15.0) -> tuple:
    campaign = _campaign()
    campaign.run(store=store, worker_wait_s=worker_wait_s)
    csv_path = tmp_path / "dist.csv"
    campaign.to_csv(csv_path)
    return campaign, csv_path.read_bytes()


@pytest.mark.slow
class TestFleetChaos:
    def test_sigkill_and_sigstop_workers_exactly_once(self, golden_csv,
                                                      tmp_path):
        """3 workers; one SIGKILLed mid-lease, one frozen past the
        heartbeat deadline and resumed as a zombie.  The campaign must
        finish with exactly one commit per cell and a byte-identical
        CSV."""
        store_root = tmp_path / "store"
        store = layout(store_root)
        workers = {
            "ka": _spawn_worker(store_root, "ka"),   # the SIGKILL victim
            "zb": _spawn_worker(store_root, "zb"),   # the SIGSTOP zombie
            "w0": _spawn_worker(store_root, "w0"),   # the survivor
        }
        chaos_log: list = []

        def chaos() -> None:
            killed = stopped = False
            resumed_at = None
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if not stopped and _active_owner_of(store, "zb") is not None:
                    workers["zb"].send_signal(signal.SIGSTOP)
                    stopped = True
                    # Frozen well past the 3 x 0.2 s staleness deadline:
                    # survivors will declare zb dead and steal its lease.
                    resumed_at = time.monotonic() + 2.5
                    chaos_log.append("SIGSTOP zb")
                if not killed and _active_owner_of(store, "ka") is not None:
                    workers["ka"].kill()
                    killed = True
                    chaos_log.append("SIGKILL ka")
                if (stopped and resumed_at is not None
                        and time.monotonic() >= resumed_at):
                    workers["zb"].send_signal(signal.SIGCONT)
                    resumed_at = None
                    chaos_log.append("SIGCONT zb")
                if killed and stopped and resumed_at is None:
                    return
                time.sleep(0.02)

        agent = threading.Thread(target=chaos, daemon=True)
        agent.start()
        try:
            campaign, csv_bytes = _run_distributed(store_root, tmp_path,
                                                   worker_wait_s=20.0)
            # Let the zombie come back, finish its cell, and be fenced
            # before we look at the evidence.
            for name in ("zb", "w0"):
                try:
                    workers[name].wait(timeout=30)
                except subprocess.TimeoutExpired:
                    pass
        finally:
            for proc in workers.values():
                try:
                    proc.send_signal(signal.SIGCONT)
                except OSError:
                    pass
                if proc.poll() is None:
                    proc.terminate()
        agent.join(timeout=10.0)
        outputs = {name: proc.communicate(timeout=30)[0]
                   for name, proc in workers.items()}

        assert "SIGKILL ka" in chaos_log, chaos_log
        assert "SIGCONT zb" in chaos_log, chaos_log
        # 1. Byte-identical CSV despite a killed and a frozen worker.
        assert csv_bytes == golden_csv, outputs
        # 2. Exactly one commit marker per cell, no duplicates.
        done_names = [p.name for p in store.done_dir.iterdir()]
        done_keys = [name.split(SEP)[0] for name in done_names]
        assert len(done_keys) == len(campaign.tasks())
        assert len(set(done_keys)) == len(done_keys)
        # 3. The SIGKILLed worker's lease was taken over: some cell
        #    committed at a fencing token above 1.
        queue = WorkQueue(store, worker="auditor")
        assert campaign.last_dist["takeovers"] >= 1, (
            campaign.last_dist, outputs)
        assert max(queue.done_tokens().values()) >= 2
        # 4. The zombie either finished after the steal and was fenced
        #    (outcome file without a matching commit marker), or it was
        #    interrupted before finishing — never double-committed.
        zombie_evidence = (len(queue.zombie_outcomes()) >= 1
                           or "fenced" in outputs["zb"])
        assert zombie_evidence, outputs["zb"]
        # 5. The merged journal is a resumable single-process checkpoint.
        merged = store.merged_journal
        assert merged.exists()
        from repro.core.journal import RunJournal
        entries = RunJournal(merged).load()
        completed = [e for e in entries.values()
                     if e.get("status") in ("ok", "cached")]
        assert len(completed) == len(campaign.tasks())

    def test_worker_sigterm_releases_lease_and_campaign_finishes(
            self, golden_csv, tmp_path):
        """Graceful SIGTERM mid-lease: the worker exits 130, its lease
        goes straight back to pending, and the coordinator's inline
        fallback finishes the campaign."""
        store_root = tmp_path / "store"
        store = layout(store_root)
        worker = _spawn_worker(store_root, "gt")

        def chaos() -> None:
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if _active_owner_of(store, "gt") is not None:
                    worker.send_signal(signal.SIGTERM)
                    return
                time.sleep(0.02)

        agent = threading.Thread(target=chaos, daemon=True)
        agent.start()
        campaign, csv_bytes = _run_distributed(store_root, tmp_path,
                                               worker_wait_s=10.0)
        agent.join(timeout=10.0)
        output, _ = worker.communicate(timeout=30)
        assert csv_bytes == golden_csv, output
        if worker.returncode == 130:
            assert "released" in output or "lease released" in output
        else:
            # Lost the race: the worker finished everything first.
            assert worker.returncode == 0, output


class TestCoordinatorFallback:
    def test_zero_workers_falls_back_to_local_pool(self, golden_csv,
                                                   tmp_path):
        """A distributed campaign with no workers at all degrades to the
        PR 4 in-process pool and still matches the serial CSV."""
        campaign, csv_bytes = _run_distributed(tmp_path / "store", tmp_path,
                                               worker_wait_s=0.0)
        assert csv_bytes == golden_csv
        assert campaign.last_dist["inline_cells"] == len(campaign.tasks())
        assert campaign.last_run_stats.executed == len(campaign.tasks())

    def test_distributed_rerun_resumes_from_commit_markers(self, golden_csv,
                                                           tmp_path):
        """Re-running the same campaign against the same store replays
        every committed cell without re-execution."""
        store = tmp_path / "store"
        _run_distributed(store, tmp_path, worker_wait_s=0.0)
        campaign, csv_bytes = _run_distributed(store, tmp_path,
                                               worker_wait_s=0.0)
        assert csv_bytes == golden_csv
        assert campaign.last_run_stats.resumed == len(campaign.tasks())
        assert campaign.last_run_stats.executed == 0
        assert campaign.last_dist["resumed"] == len(campaign.tasks())


@pytest.mark.slow
class TestLateWorkerFleet:
    def test_worker_dies_mid_campaign_coordinator_finishes(self, golden_csv,
                                                           tmp_path):
        """A worker that exits after one cell leaves the rest to the
        coordinator's fallback; the records still match serial."""
        store = tmp_path / "store"
        worker = _spawn_worker(store, "mc", max_cells=1)
        campaign, csv_bytes = _run_distributed(store, tmp_path,
                                               worker_wait_s=10.0)
        output, _ = worker.communicate(timeout=60)
        assert worker.returncode == 0, output
        assert csv_bytes == golden_csv
        workers_seen = set(campaign.last_dist["workers"])
        # The short-lived worker committed its one cell...
        assert "1 committed" in output
        # ...and somebody (worker or coordinator) did the rest.
        assert len(campaign.records) == len(campaign.tasks())
        assert workers_seen  # at least one id in the outcome trail


# ---------------------------------------------------------------------------
# the fleet-scale fault gauntlet under the same abuse
# ---------------------------------------------------------------------------

def _gauntlet_env(tmp_path: Path) -> dict:
    env = _worker_env()
    env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
    return env


def _gauntlet_cmd(csv_path: Path, journal: Path = None, jobs: int = 2,
                  resume: bool = False, no_cache: bool = True) -> list:
    """The acceptance invocation: a 200-session regional-outage gauntlet
    with admission control and load shedding active, sharded over two
    worker processes."""
    cmd = [sys.executable, "-m", "repro", "gauntlet",
           "--scenarios", "region-outage", "--fleet-sizes", "50", "200",
           "--jobs", str(jobs), "--csv", str(csv_path)]
    if journal is not None:
        cmd += ["--journal", str(journal)]
    if no_cache:
        cmd.append("--no-cache")
    if resume:
        cmd.append("--resume")
    return cmd


@pytest.fixture(scope="module")
def gauntlet_golden_csv(tmp_path_factory) -> bytes:
    """The undisturbed in-process serial sweep, same grid as the CLI."""
    from repro.experiments import gauntlet

    result = gauntlet.run(scenarios=["region-outage"],
                          fleet_sizes=[50, 200], seed=0)
    path = tmp_path_factory.mktemp("gauntlet_golden") / "golden.csv"
    result.to_csv(path)
    return path.read_bytes()


@pytest.mark.slow
class TestGauntletKill9:
    def test_kill9_then_resume_matches_serial(self, gauntlet_golden_csv,
                                              tmp_path):
        """SIGKILL the gauntlet CLI mid-sweep, ``--resume``, and the CSV
        must be byte-identical to the undisturbed serial run."""
        env = _gauntlet_env(tmp_path)
        journal = tmp_path / "gauntlet.jsonl"

        victim = subprocess.Popen(
            _gauntlet_cmd(tmp_path / "first.csv", journal, jobs=2),
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        # The journal is created inside the graceful-interrupt block, so
        # its appearance marks a run in flight; SIGKILL right there.
        deadline = time.monotonic() + 60.0
        while (time.monotonic() < deadline and victim.poll() is None
               and not journal.exists()):
            time.sleep(0.01)
        if victim.poll() is None:
            victim.kill()  # SIGKILL: no handlers, no flushing, no mercy
        victim.wait(timeout=30)

        done = subprocess.run(
            _gauntlet_cmd(tmp_path / "final.csv", journal, jobs=2,
                          resume=True),
            env=env, capture_output=True, text=True, timeout=300,
        )
        assert done.returncode == 0, done.stderr
        assert (tmp_path / "final.csv").read_bytes() == gauntlet_golden_csv
        assert "worst cell:" in done.stdout

    def test_cached_replay_is_byte_identical(self, gauntlet_golden_csv,
                                             tmp_path):
        """A second run against a warm result cache replays every cell
        and writes the same bytes."""
        env = _gauntlet_env(tmp_path)
        cold = subprocess.run(
            _gauntlet_cmd(tmp_path / "cold.csv", no_cache=False),
            env=env, capture_output=True, text=True, timeout=300,
        )
        assert cold.returncode == 0, cold.stderr
        warm = subprocess.run(
            _gauntlet_cmd(tmp_path / "warm.csv", no_cache=False),
            env=env, capture_output=True, text=True, timeout=300,
        )
        assert warm.returncode == 0, warm.stderr
        assert (tmp_path / "cold.csv").read_bytes() == gauntlet_golden_csv
        assert (tmp_path / "warm.csv").read_bytes() == gauntlet_golden_csv
