"""Property tests: the distributed merge is a true CRDT-style fold.

ISSUE 6 satellite: merging per-worker ``RunManifest``s must be
order-independent (commutative and associative), and replaying a merged
journal must be idempotent — merging the merge back in changes nothing.
Hypothesis drives the merge with arbitrary worker outputs, including
conflicting entries for the same cell key.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dist.merge import (
    merge_journal_entries,
    merge_journals,
    merge_manifests,
)
from repro.core.journal import (
    STATUS_CACHED,
    STATUS_FAILED,
    STATUS_FENCED,
    STATUS_OK,
    STATUS_QUARANTINED,
    CellOutcome,
    RunJournal,
    RunManifest,
)

_KEYS = st.sampled_from([f"key-{i:02d}" for i in range(8)])
_STATUSES = st.sampled_from([STATUS_OK, STATUS_CACHED, STATUS_FAILED,
                             STATUS_QUARANTINED, STATUS_FENCED])


@st.composite
def journal_entries(draw):
    """One worker's ``key -> entry`` journal map."""
    keys = draw(st.lists(_KEYS, unique=True, max_size=6))
    entries = {}
    for key in keys:
        status = draw(_STATUSES)
        entry = {
            "key": key,
            "name": f"cell {key}",
            "status": status,
            "attempts": draw(st.integers(min_value=1, max_value=4)),
            "duration_s": draw(st.floats(min_value=0.0, max_value=10.0,
                                         allow_nan=False)),
        }
        if status in (STATUS_OK, STATUS_CACHED):
            entry["payload"] = {"value": draw(st.integers(0, 100))}
        else:
            entry["error"] = {"type": "RuntimeError",
                              "message": draw(st.text(max_size=8))}
        entries[key] = entry
    return entries


@st.composite
def manifests(draw):
    manifest = RunManifest()
    for entries in draw(st.lists(journal_entries(), max_size=3)):
        for key, entry in entries.items():
            manifest.record(CellOutcome(
                name=entry["name"], key=key, status=entry["status"],
                attempts=entry["attempts"],
                duration_s=entry["duration_s"],
                error=entry.get("error"),
                worker=draw(st.sampled_from(["w0", "w1", "w2"])),
            ))
    return manifest


def _canon(manifest: RunManifest) -> str:
    return json.dumps(manifest.as_dict(), sort_keys=True)


class TestManifestMergeProperties:
    @given(a=manifests(), b=manifests())
    @settings(max_examples=50, deadline=None)
    def test_commutative(self, a, b):
        assert _canon(merge_manifests([a, b])) == \
            _canon(merge_manifests([b, a]))

    @given(a=manifests(), b=manifests(), c=manifests())
    @settings(max_examples=50, deadline=None)
    def test_associative(self, a, b, c):
        left = merge_manifests([merge_manifests([a, b]), c])
        right = merge_manifests([a, merge_manifests([b, c])])
        assert _canon(left) == _canon(right)

    @given(a=manifests())
    @settings(max_examples=50, deadline=None)
    def test_idempotent(self, a):
        once = merge_manifests([a])
        twice = merge_manifests([once, a])
        assert _canon(once) == _canon(twice)

    @given(a=manifests(), b=manifests())
    @settings(max_examples=50, deadline=None)
    def test_no_outcome_lost(self, a, b):
        merged = merge_manifests([a, b])
        merged_forms = {json.dumps(c.as_dict(), sort_keys=True)
                        for c in merged.cells}
        for source in (a, b):
            for cell in source.cells:
                assert json.dumps(cell.as_dict(),
                                  sort_keys=True) in merged_forms


class TestJournalMergeProperties:
    @given(a=journal_entries(), b=journal_entries())
    @settings(max_examples=100, deadline=None)
    def test_commutative(self, a, b):
        assert merge_journal_entries([a, b]) == merge_journal_entries([b, a])

    @given(a=journal_entries(), b=journal_entries(), c=journal_entries())
    @settings(max_examples=100, deadline=None)
    def test_associative(self, a, b, c):
        left = merge_journal_entries(
            [merge_journal_entries([a, b]), c])
        right = merge_journal_entries(
            [a, merge_journal_entries([b, c])])
        assert left == right

    @given(a=journal_entries())
    @settings(max_examples=100, deadline=None)
    def test_idempotent(self, a):
        once = merge_journal_entries([a])
        assert merge_journal_entries([once, a]) == once

    @given(a=journal_entries(), b=journal_entries())
    @settings(max_examples=100, deadline=None)
    def test_completed_always_beats_failed(self, a, b):
        merged = merge_journal_entries([a, b])
        for key, entry in merged.items():
            statuses = {m[key]["status"] for m in (a, b) if key in m}
            if statuses & {STATUS_OK, STATUS_CACHED}:
                assert entry["status"] in (STATUS_OK, STATUS_CACHED)


class TestMergedJournalReplay:
    def test_merged_journal_replay_is_idempotent(self, tmp_path):
        """Merging the merged journal back in is a no-op, and loading it
        through RunJournal round-trips every entry."""
        a_path, b_path = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        with RunJournal(a_path) as a:
            a.reset()
            a.append(key="k1", name="c1", status=STATUS_OK,
                     payload={"v": 1})
            a.append(key="k2", name="c2", status=STATUS_FAILED,
                     error={"type": "E", "message": "boom"})
        with RunJournal(b_path) as b:
            b.reset()
            b.append(key="k2", name="c2", status=STATUS_OK,
                     payload={"v": 2})
            b.append(key="k3", name="c3", status=STATUS_CACHED,
                     payload={"v": 3})

        merged_path = tmp_path / "merged.jsonl"
        merge_journals([a_path, b_path], merged_path)
        first = merged_path.read_bytes()

        # Replay: merge the merged file together with the originals.
        again_path = tmp_path / "again.jsonl"
        merge_journals([merged_path, a_path, b_path], again_path)
        assert again_path.read_bytes() == first

        entries = RunJournal(merged_path).load()
        assert set(entries) == {"k1", "k2", "k3"}
        # k2 succeeded on one worker, failed on another: success wins.
        assert entries["k2"]["status"] == STATUS_OK
        assert entries["k2"]["payload"] == {"v": 2}

    def test_merge_order_does_not_change_file_bytes(self, tmp_path):
        paths = []
        for i, worker in enumerate(("w0", "w1", "w2")):
            path = tmp_path / f"{worker}.jsonl"
            with RunJournal(path) as journal:
                journal.reset()
                journal.append(key=f"k{i}", name=f"c{i}", status=STATUS_OK,
                               payload={"v": i})
                journal.append(key="shared", name="shared",
                               status=STATUS_OK, payload={"v": 42})
            paths.append(path)
        out1 = tmp_path / "m1.jsonl"
        out2 = tmp_path / "m2.jsonl"
        merge_journals(paths, out1)
        merge_journals(list(reversed(paths)), out2)
        assert out1.read_bytes() == out2.read_bytes()
