"""Lease-queue protocol coverage: claims, steals, fencing, resume.

The exactly-once contract under test (ISSUE 6): claiming is a
single-winner atomic rename, takeover increments a monotonic fencing
token, and a zombie whose lease was taken over can finish its work but
never commit it — at most one ``done/`` marker ever exists per cell key.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.dist.heartbeat import HeartbeatWriter
from repro.core.dist.queue import (
    QueueError,
    TaskSpec,
    WorkQueue,
    _parse_lease_name,
)
from repro.core.dist.store import layout
from repro.core.cache import code_fingerprint
from repro.core.parallel import CellTask


def _double(value: int) -> int:
    return value * 2


def _specs(n: int) -> list:
    specs = []
    for i in range(n):
        task = CellTask(name=f"cell-{i}", fn=_double, kwargs={"value": i})
        specs.append(TaskSpec(key=task.cache_key(), name=task.name,
                              task=task))
    return specs


@pytest.fixture()
def store(tmp_path):
    return layout(tmp_path / "store").create()


def _publish(store, specs, fingerprint="fp-1"):
    queue = WorkQueue(store, worker="publisher")
    counts = queue.publish(specs, fingerprint, code_fingerprint())
    return queue, counts


class TestPublishJoin:
    def test_publish_enqueues_every_cell(self, store):
        specs = _specs(4)
        _, counts = _publish(store, specs)
        assert counts == {"published": 4, "already_done": 0, "skipped": 0}
        assert sorted(p.stem for p in store.pending_dir.iterdir()) == \
            sorted(s.key for s in specs)

    def test_join_requires_matching_code_fingerprint(self, store):
        _publish(store, _specs(1))
        queue = WorkQueue(store, worker="w1")
        assert queue.join(code_fingerprint())["total"] == 1
        with pytest.raises(QueueError, match="code fingerprint mismatch"):
            queue.join("deadbeef")

    def test_join_without_campaign_raises(self, store):
        with pytest.raises(QueueError, match="no campaign published"):
            WorkQueue(store, worker="w1").join(code_fingerprint())

    def test_republish_same_campaign_skips_done_cells(self, store):
        specs = _specs(3)
        queue, _ = _publish(store, specs)
        lease = queue.claim()
        assert queue.commit(lease, {"status": "ok", "payload": 1})
        _, counts = _publish(store, specs)
        assert counts["already_done"] == 1
        assert counts["published"] == 0  # 2 still pending -> skipped
        assert counts["skipped"] == 2
        assert len(queue.done_tokens()) == 1

    def test_publish_different_campaign_wipes_queue(self, store):
        queue, _ = _publish(store, _specs(2), fingerprint="fp-1")
        lease = queue.claim()
        queue.commit(lease, {"status": "ok"})
        _, counts = _publish(store, _specs(3), fingerprint="fp-2")
        assert counts == {"published": 3, "already_done": 0, "skipped": 0}


class TestClaim:
    def test_claim_moves_pending_to_active_with_token_1(self, store):
        queue, _ = _publish(store, _specs(1))
        worker = WorkQueue(store, worker="w1")
        lease = worker.claim()
        assert lease is not None
        assert lease.token == 1
        assert lease.worker == "w1"
        assert _parse_lease_name(lease.path.name) == (lease.key, 1, "w1")
        assert not any(store.pending_dir.iterdir())

    def test_each_cell_claimed_exactly_once(self, store):
        _publish(store, _specs(6))
        queues = [WorkQueue(store, worker=f"w{i}") for i in range(3)]
        claimed = []
        for queue in queues:
            while True:
                lease = queue.claim(steal=False)
                if lease is None:
                    break
                claimed.append(lease.key)
        assert len(claimed) == 6
        assert len(set(claimed)) == 6  # no double-claims

    def test_concurrent_claims_never_duplicate(self, store):
        """Threads racing on the same pending set split it cleanly."""
        _publish(store, _specs(12))
        results: dict = {}
        lock = threading.Lock()

        def work(worker_id: str) -> None:
            queue = WorkQueue(store, worker=worker_id)
            while True:
                lease = queue.claim(steal=False)
                if lease is None:
                    return
                with lock:
                    results.setdefault(lease.key, []).append(worker_id)

        threads = [threading.Thread(target=work, args=(f"w{i}",))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 12
        assert all(len(owners) == 1 for owners in results.values())

    def test_release_returns_cell_to_pending(self, store):
        queue, _ = _publish(store, _specs(1))
        worker = WorkQueue(store, worker="w1")
        lease = worker.claim()
        assert worker.release(lease) is True
        assert worker.claim() is not None  # claimable again


class TestStealAndFence:
    def test_stale_owner_is_stolen_with_incremented_token(self, store):
        queue, _ = _publish(store, _specs(1))
        victim = WorkQueue(store, worker="victim")
        lease = victim.claim()
        # victim never beats -> its lease mtime is the only signal
        time.sleep(0.05)
        thief = WorkQueue(store, worker="thief")
        stolen = thief.claim(stale_after_s=0.01)
        assert stolen is not None
        assert stolen.key == lease.key
        assert stolen.token == 2
        assert stolen.worker == "thief"

    def test_live_owner_is_not_stolen(self, store):
        queue, _ = _publish(store, _specs(1))
        victim = WorkQueue(store, worker="victim")
        beacon = HeartbeatWriter(store, "victim", interval_s=0.05)
        beacon.beat()
        victim.claim()
        thief = WorkQueue(store, worker="thief")
        assert thief.claim(stale_after_s=60.0) is None

    def test_zombie_commit_is_fenced(self, store):
        """The acceptance criterion: work may run twice, commit cannot."""
        queue, _ = _publish(store, _specs(1))
        zombie = WorkQueue(store, worker="zombie")
        zombie_lease = zombie.claim()
        time.sleep(0.05)
        survivor = WorkQueue(store, worker="survivor")
        survivor_lease = survivor.claim(stale_after_s=0.01)
        assert survivor_lease.token == zombie_lease.token + 1
        # Survivor commits first; the zombie wakes up and tries.
        assert survivor.commit(survivor_lease,
                               {"status": "ok", "payload": 2}) is True
        assert zombie.commit(zombie_lease,
                             {"status": "ok", "payload": 2}) is False
        done = queue.done_tokens()
        assert done == {zombie_lease.key: survivor_lease.token}
        # The zombie's finished outcome survives as forensic evidence.
        zombies = queue.zombie_outcomes()
        assert len(zombies) == 1
        assert zombies[0]["token"] == zombie_lease.token

    def test_fencing_order_is_commit_wins_not_last_write(self, store):
        """Even if the zombie commits FIRST, the steal already fenced it."""
        queue, _ = _publish(store, _specs(1))
        zombie = WorkQueue(store, worker="zombie")
        zombie_lease = zombie.claim()
        time.sleep(0.05)
        survivor = WorkQueue(store, worker="survivor")
        survivor_lease = survivor.claim(stale_after_s=0.01)
        # Zombie tries before the survivor has committed anything:
        assert zombie.commit(zombie_lease, {"status": "ok"}) is False
        assert survivor.commit(survivor_lease, {"status": "ok"}) is True
        assert len(queue.done_tokens()) == 1

    def test_committed_outcome_carries_token_and_worker(self, store):
        queue, _ = _publish(store, _specs(1))
        worker = WorkQueue(store, worker="w1")
        lease = worker.claim()
        worker.commit(lease, {"status": "ok", "payload": 7})
        outcome = queue.outcome_for(lease.key)
        assert outcome["payload"] == 7
        assert outcome["token"] == 1
        assert outcome["worker"] == "w1"

    def test_finished_when_every_cell_committed(self, store):
        queue, _ = _publish(store, _specs(2))
        worker = WorkQueue(store, worker="w1")
        assert queue.finished() is False
        while True:
            lease = worker.claim()
            if lease is None:
                break
            worker.commit(lease, {"status": "ok"})
        assert queue.finished() is True
        counts = queue.counts()
        assert counts["pending"] == 0
        assert counts["active"] == 0
        assert counts["done"] == 2


class TestSpecRoundTrip:
    def test_task_spec_survives_json(self, store):
        spec = _specs(1)[0]
        restored = TaskSpec.from_json(spec.to_json())
        assert restored.key == spec.key
        assert restored.name == spec.name
        assert restored.task.execute() == spec.task.execute()
