"""Error-taxonomy and retry/backoff policy coverage.

The contract under test (ISSUE 4): transient errors are retried with
exponentially growing delays, deterministic errors fail fast without a
single retry, and poison cells are quarantined exactly once — never
retried, never fatal, always listed in the run manifest.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.errors import (
    Category,
    CellFailure,
    CellTimeoutError,
    DeterministicError,
    PoisonCell,
    RetryPolicy,
    TransientError,
    WorkerCrashError,
    classify,
    classify_names,
)
from repro.core.journal import RunManifest
from repro.core.parallel import CellTask, TaskRunner


# ---------------------------------------------------------------------------
# classification
# ---------------------------------------------------------------------------

class TestClassify:
    def test_explicit_taxonomy_classes(self):
        assert classify(TransientError("x")) is Category.TRANSIENT
        assert classify(DeterministicError("x")) is Category.DETERMINISTIC
        assert classify(PoisonCell("x")) is Category.POISON

    def test_watchdog_and_crash_errors_are_transient(self):
        assert classify(CellTimeoutError("c", 1.0, 1)) is Category.TRANSIENT
        assert classify(WorkerCrashError("c", -9)) is Category.TRANSIENT

    def test_stdlib_flakiness_is_transient(self):
        assert classify(ConnectionError("reset")) is Category.TRANSIENT
        assert classify(TimeoutError("slow")) is Category.TRANSIENT

    def test_arbitrary_exception_is_deterministic(self):
        assert classify(ValueError("bug")) is Category.DETERMINISTIC
        assert classify(KeyError("bug")) is Category.DETERMINISTIC

    def test_classification_survives_process_boundary_by_name(self):
        """Cross-process errors classify from MRO names alone."""
        assert classify_names(["MyError", "TransientError",
                               "CellError"]) is Category.TRANSIENT
        assert classify_names(["PoisonCell", "CellError",
                               "Exception"]) is Category.POISON
        assert classify_names(["ValueError",
                               "Exception"]) is Category.DETERMINISTIC


class TestRetryPolicy:
    def test_delays_grow_exponentially_and_cap(self):
        policy = RetryPolicy(max_retries=5, backoff_base_s=1.0,
                             backoff_factor=2.0, backoff_max_s=5.0)
        assert [policy.delay_for(r) for r in (1, 2, 3, 4, 5)] == [
            1.0, 2.0, 4.0, 5.0, 5.0
        ]

    def test_invalid_policies_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_s=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)


# ---------------------------------------------------------------------------
# runner behaviour (serial path: deterministic, monkeypatchable clock)
# ---------------------------------------------------------------------------

def _flaky(counter: str, fail_times: int, value: int) -> int:
    """Raises TransientError for the first ``fail_times`` calls."""
    path = Path(counter)
    calls = int(path.read_text()) if path.exists() else 0
    path.write_text(str(calls + 1))
    if calls < fail_times:
        raise TransientError(f"flaky call {calls}")
    return value * 2


def _bug(value: int) -> int:
    raise ValueError(f"cell {value} has a deterministic bug")


def _poison(value: int) -> int:
    raise PoisonCell(f"configuration {value} is unrunnable")


def _ok(value: int) -> int:
    return value * 2


class TestTransientRetries:
    def test_retried_with_growing_backoff(self, tmp_path):
        """Monkeypatched clock: delays follow the exponential policy."""
        slept: list = []
        runner = TaskRunner(
            jobs=1,
            policy=RetryPolicy(max_retries=3, backoff_base_s=0.5,
                               backoff_factor=2.0, backoff_max_s=60.0),
            sleep=slept.append,
        )
        task = CellTask(name="flaky", fn=_flaky,
                        kwargs={"counter": str(tmp_path / "n"),
                                "fail_times": 2, "value": 21})
        assert runner.run([task]) == [42]
        assert slept == [0.5, 1.0]
        assert runner.stats.retries == 2
        outcome = runner.manifest.cells[-1]
        assert outcome.status == "ok"
        assert outcome.attempts == 3
        assert outcome.retries == 2
        assert outcome.backoff_s == [0.5, 1.0]

    def test_exhausted_budget_raises_in_failfast(self, tmp_path):
        runner = TaskRunner(jobs=1,
                            policy=RetryPolicy(max_retries=1,
                                               backoff_base_s=0.0),
                            sleep=lambda s: None)
        task = CellTask(name="flaky", fn=_flaky,
                        kwargs={"counter": str(tmp_path / "n"),
                                "fail_times": 5, "value": 1})
        with pytest.raises(TransientError):
            runner.run([task])
        assert runner.stats.retries == 1
        assert runner.stats.failed == 1
        assert runner.manifest.failed()[0].error["category"] == "transient"

    def test_exhausted_budget_records_in_continue_mode(self, tmp_path):
        runner = TaskRunner(jobs=1, failfast=False,
                            policy=RetryPolicy(max_retries=1,
                                               backoff_base_s=0.0),
                            sleep=lambda s: None)
        tasks = [
            CellTask(name="flaky", fn=_flaky,
                     kwargs={"counter": str(tmp_path / "n"),
                             "fail_times": 5, "value": 1}),
            CellTask(name="fine", fn=_ok, kwargs={"value": 3}),
        ]
        results = runner.run(tasks)
        assert isinstance(results[0], CellFailure)
        assert results[0].category == "transient"
        assert results[1] == 6


class TestDeterministicFailFast:
    def test_never_retried(self):
        slept: list = []
        runner = TaskRunner(jobs=1,
                            policy=RetryPolicy(max_retries=5),
                            sleep=slept.append)
        with pytest.raises(ValueError, match="deterministic bug"):
            runner.run([CellTask(name="bug", fn=_bug, kwargs={"value": 7})])
        assert slept == []  # not a single backoff sleep
        assert runner.stats.retries == 0
        assert runner.manifest.failed()[0].attempts == 1

    def test_recorded_not_raised_in_continue_mode(self):
        runner = TaskRunner(jobs=1, failfast=False)
        results = runner.run([
            CellTask(name="bug", fn=_bug, kwargs={"value": 7}),
            CellTask(name="fine", fn=_ok, kwargs={"value": 7}),
        ])
        assert isinstance(results[0], CellFailure)
        assert results[0].error_type == "ValueError"
        assert results[1] == 14


class TestPoisonQuarantine:
    def test_quarantined_exactly_once_and_listed(self):
        """One poison cell: one attempt, no retries, sweep continues."""
        slept: list = []
        runner = TaskRunner(jobs=1,
                            policy=RetryPolicy(max_retries=5),
                            sleep=slept.append)
        manifest: RunManifest = runner.manifest
        results = runner.run([
            CellTask(name="good-1", fn=_ok, kwargs={"value": 1}),
            CellTask(name="poison", fn=_poison, kwargs={"value": 2}),
            CellTask(name="good-2", fn=_ok, kwargs={"value": 3}),
        ])
        assert results[0] == 2 and results[2] == 6
        assert isinstance(results[1], CellFailure)
        assert results[1].category == "poison"
        assert results[1].attempts == 1
        assert slept == []
        assert runner.stats.quarantined == 1
        quarantined = manifest.quarantined()
        assert [c.name for c in quarantined] == ["poison"]
        assert "unrunnable" in quarantined[0].error["message"]

    def test_quarantine_does_not_sink_failfast_runs(self):
        """Even failfast mode survives poison — that is the point."""
        runner = TaskRunner(jobs=1, failfast=True)
        results = runner.run([
            CellTask(name="poison", fn=_poison, kwargs={"value": 1}),
            CellTask(name="fine", fn=_ok, kwargs={"value": 5}),
        ])
        assert isinstance(results[0], CellFailure)
        assert results[1] == 10

    def test_poison_quarantined_across_process_boundary(self):
        """PoisonCell raised inside a worker still quarantines."""
        runner = TaskRunner(jobs=2)
        results = runner.run([
            CellTask(name="poison", fn=_poison, kwargs={"value": 1}),
            CellTask(name="fine", fn=_ok, kwargs={"value": 5}),
        ])
        assert isinstance(results[0], CellFailure)
        assert results[0].category == "poison"
        assert results[1] == 10
        assert runner.stats.quarantined == 1


class TestManifestAccounting:
    def test_summary_line_counts_everything(self, tmp_path):
        runner = TaskRunner(jobs=1, failfast=False,
                            policy=RetryPolicy(max_retries=1,
                                               backoff_base_s=0.0),
                            sleep=lambda s: None)
        runner.run([
            CellTask(name="fine", fn=_ok, kwargs={"value": 1}),
            CellTask(name="poison", fn=_poison, kwargs={"value": 2}),
            CellTask(name="flaky", fn=_flaky,
                     kwargs={"counter": str(tmp_path / "n"),
                             "fail_times": 1, "value": 3}),
        ])
        line = runner.manifest.summary_line()
        assert "3 cells" in line
        assert "2 ok" in line
        assert "1 quarantined" in line
        assert "1 retried" in line

    def test_manifest_roundtrips_through_json(self, tmp_path):
        runner = TaskRunner(jobs=1, failfast=False)
        runner.run([CellTask(name="poison", fn=_poison,
                             kwargs={"value": 1})])
        path = tmp_path / "manifest.json"
        runner.manifest.write(path)
        loaded = RunManifest.read(path)
        assert loaded.counts() == runner.manifest.counts()
        assert loaded.quarantined()[0].name == "poison"


# ---------------------------------------------------------------------------
# seeded jitter (ISSUE 6 satellite): anti-thundering-herd, yet bit-identical
# ---------------------------------------------------------------------------

class TestSeededJitter:
    def test_zero_jitter_reproduces_legacy_schedule(self):
        plain = RetryPolicy(max_retries=3, backoff_base_s=1.0,
                            backoff_factor=2.0, backoff_max_s=60.0)
        zero = RetryPolicy(max_retries=3, backoff_base_s=1.0,
                           backoff_factor=2.0, backoff_max_s=60.0,
                           jitter=0.0, seed=123)
        for retry in (1, 2, 3):
            assert zero.delay_for(retry, salt="x") == plain.delay_for(retry)

    def test_same_seed_same_salt_is_bit_identical(self):
        a = RetryPolicy(max_retries=3, jitter=0.25, seed=7)
        b = RetryPolicy(max_retries=3, jitter=0.25, seed=7)
        for retry in (1, 2, 3):
            assert a.delay_for(retry, salt="cell-1") == \
                b.delay_for(retry, salt="cell-1")

    def test_different_salts_decorrelate_the_fleet(self):
        """Ten workers retrying the same cell never share a delay —
        the whole point of jitter."""
        policy = RetryPolicy(max_retries=1, backoff_base_s=1.0,
                             jitter=0.25, seed=0)
        delays = {policy.delay_for(1, salt=f"cell:worker-{i}")
                  for i in range(10)}
        assert len(delays) == 10

    def test_jitter_bounded_by_fraction(self):
        policy = RetryPolicy(max_retries=1, backoff_base_s=2.0,
                             backoff_factor=2.0, backoff_max_s=60.0,
                             jitter=0.25, seed=3)
        for retry in (1, 2, 3):
            base = 2.0 * (2.0 ** (retry - 1))
            delay = policy.delay_for(retry, salt="s")
            assert base * 0.75 <= delay <= base * 1.25

    def test_jitter_never_exceeds_backoff_cap(self):
        policy = RetryPolicy(max_retries=1, backoff_base_s=10.0,
                             backoff_factor=10.0, backoff_max_s=15.0,
                             jitter=1.0, seed=1)
        for retry in (1, 2, 3, 4):
            assert policy.delay_for(retry, salt="s") <= 15.0

    def test_invalid_jitter_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_runner_schedule_is_deterministic_per_cell(self, tmp_path):
        """Two identical flaky sweeps sleep the exact same delays."""
        def run_once(tag: str):
            slept = []
            runner = TaskRunner(
                jobs=1, retries=2,
                policy=RetryPolicy(max_retries=2, backoff_base_s=0.01,
                                   jitter=0.5, seed=11),
                sleep=slept.append,
            )
            runner.run([CellTask(
                name="flaky", fn=_flaky,
                kwargs={"counter": str(tmp_path / f"n-{tag}"),
                        "fail_times": 2, "value": 1},
            )])
            return slept

        assert run_once("a") == run_once("b")
