"""Smoke-run the fast example scripts end to end.

The examples are the library's public face; they must keep running as the
APIs evolve.  Only the quick ones run here — the full reproduction script
is exercised piecewise by the experiment suites.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: float = 240.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExampleScripts:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "persona kind : spatial" in out
        assert "protocol     : quic" in out
        assert "poor connection: False" in out

    def test_device_mix_study(self):
        out = run_example("device_mix_study.py")
        assert "quic" in out and "rtp" in out
        assert "anycast: False" in out

    def test_encrypted_traffic_inference(self):
        out = run_example("encrypted_traffic_inference.py")
        assert "-> semantic" in out
        assert "-> video" in out
        assert "-> mesh" in out

    def test_shaped_network_probe(self):
        out = run_example("shaped_network_probe.py")
        assert "cutoff" in out
        assert "700 Kbps" in out

    def test_all_examples_have_docstrings_and_main(self):
        for script in sorted(EXAMPLES.glob("*.py")):
            source = script.read_text()
            assert source.lstrip().startswith(
                ('#!/usr/bin/env python3\n"""', '"""')
            ), f"{script.name} missing docstring header"
            assert 'if __name__ == "__main__":' in source, script.name
