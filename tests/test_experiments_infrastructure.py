"""Experiment reproductions: Table 1 and the Sec. 4.1 findings."""

import numpy as np
import pytest

from repro import calibration
from repro.devices.models import MacBook, VisionPro
from repro.experiments import protocols, table1


@pytest.fixture(scope="module")
def table1_result():
    return table1.run(repeats=5, seed=0)


class TestTable1:
    def test_all_30_cells_measured(self, table1_result):
        assert len(table1_result.cells) == 30

    def test_stds_under_paper_bound(self, table1_result):
        # Table 1 caption: the std of all results is < 7 ms.
        assert table1_result.max_std_ms() < calibration.TABLE1_RTT_STD_BOUND_MS

    def test_diagonal_cells_small(self, table1_result):
        assert table1_result.mean_ms("W", "FaceTime", "W") < 15
        assert table1_result.mean_ms("M", "FaceTime", "M1") < 15
        assert table1_result.mean_ms("E", "FaceTime", "E") < 15

    def test_cross_country_cells_high(self, table1_result):
        # Sec. 4.1: ~80 ms for some participants.
        assert table1_result.mean_ms("W", "FaceTime", "E") > 60
        assert table1_result.mean_ms("E", "FaceTime", "W") > 60

    def test_matrix_tracks_paper_within_tolerance(self, table1_result):
        errors = [
            abs(measured - paper)
            for _, _, measured, paper in table1_result.paper_comparison()
        ]
        assert float(np.mean(errors)) < 8.0
        assert max(errors) < 16.0

    def test_row_ordering_mostly_preserved(self, table1_result):
        # Within each row, near servers stay near and far stay far: rank
        # correlation with the paper's row above 0.8.
        from scipy.stats import spearmanr

        for region in ("W", "M", "E"):
            measured = table1_result.row(region)
            paper = list(calibration.TABLE1_RTT_MS[region])
            rho = spearmanr(measured, paper).statistic
            assert rho > 0.8

    def test_formatted_table_has_all_rows(self, table1_result):
        text = table1_result.format_table()
        for region in ("W", "M", "E"):
            assert f"\n{region} " in text or text.startswith(f"{region} ")


class TestProtocolFindings:
    @pytest.fixture(scope="class")
    def matrix(self):
        return protocols.run_protocol_matrix(seed=0)

    def _find(self, matrix, vca, mix):
        for obs in matrix:
            if obs.vca == vca and obs.device_mix == mix:
                return obs
        raise AssertionError(f"missing {vca} {mix}")

    def test_facetime_all_avp_is_quic(self, matrix):
        obs = self._find(matrix, "FaceTime", "Vision Pro+Vision Pro")
        assert obs.observed_protocol == "quic"
        assert not obs.p2p

    def test_facetime_mixed_is_rtp_p2p(self, matrix):
        obs = self._find(matrix, "FaceTime", "Vision Pro+MacBook")
        assert obs.observed_protocol == "rtp"
        assert obs.p2p

    def test_other_vcas_always_rtp(self, matrix):
        for vca in ("Zoom", "Webex", "Teams"):
            for mix in ("Vision Pro+Vision Pro", "Vision Pro+MacBook"):
                assert self._find(matrix, vca, mix).observed_protocol == "rtp"

    def test_zoom_p2p_webex_teams_relayed(self, matrix):
        assert self._find(matrix, "Zoom", "Vision Pro+Vision Pro").p2p
        assert not self._find(matrix, "Webex", "Vision Pro+Vision Pro").p2p
        assert not self._find(matrix, "Teams", "Vision Pro+Vision Pro").p2p

    def test_fallback_payload_type_matches_2d_calls(self):
        # Sec. 4.1: the PT field stays consistent with traditional calls.
        assert protocols.facetime_fallback_keeps_2d_payload_type(seed=0)

    def test_server_selection_follows_initiator(self):
        observations = protocols.run_server_selection()
        facetime = {
            o.initiator_city: o.selected_label
            for o in observations if o.vca == "FaceTime"
        }
        assert facetime["san jose"] == "W"
        assert facetime["washington"] == "E"

    def test_no_anycast_anywhere(self):
        verdicts = protocols.run_anycast_check(repeats=3, seed=0)
        assert verdicts == {
            "FaceTime": False, "Zoom": False, "Webex": False, "Teams": False
        }
