"""Experiment reproductions: Fig. 5, Fig. 6, and the ablations."""

import pytest

from repro import calibration
from repro.experiments import ablations, fig5, fig6


@pytest.fixture(scope="module")
def fig5_result():
    return fig5.run(frames_per_scenario=200, seed=0)


class TestFig5:
    def test_triangle_anchors_exact(self, fig5_result):
        for name, (tri_paper, _) in fig5.PAPER_ANCHORS.items():
            assert fig5_result.triangles[name] == tri_paper

    def test_gpu_means_match_paper(self, fig5_result):
        for name, (_, gpu_paper) in fig5.PAPER_ANCHORS.items():
            assert fig5_result.gpu_ms[name].mean == pytest.approx(
                gpu_paper, abs=0.15
            )

    def test_gpu_stds_tight_like_paper(self, fig5_result):
        # Fig. 5 stds are 0.05-0.11 ms in the controlled scenarios.
        for name in fig5.SCENARIOS:
            assert fig5_result.gpu_ms[name].std < 0.2

    def test_reduction_percentages(self, fig5_result):
        reductions = fig5_result.reductions_vs_baseline()
        assert reductions["V"] == pytest.approx(0.59, abs=0.03)
        assert reductions["F"] == pytest.approx(0.39, abs=0.03)
        assert reductions["D"] == pytest.approx(0.40, abs=0.03)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError):
            fig5.scenario_scene("X")


class TestOcclusionFinding:
    def test_facetime_does_not_occlusion_cull(self):
        result = fig5.run_occlusion(occlusion_aware=False)
        assert result.line_triangles == result.spread_triangles
        assert not result.optimization_adopted()

    def test_ablation_a3_shows_the_headroom(self):
        result = fig5.run_occlusion(occlusion_aware=True)
        assert result.optimization_adopted()
        assert result.line_triangles == calibration.PERSONA_TRIANGLES


class TestDeliveryInvariance:
    def test_bandwidth_and_cpu_visibility_oblivious(self):
        result = fig5.run_delivery_invariance(seed=0)
        assert result.bandwidth_unchanged()
        assert result.cpu_unchanged()


@pytest.fixture(scope="module")
def fig6_render():
    return fig6.run_rendering(duration_s=25.0, repeats=2, seed=0)


class TestFig6Rendering:
    def test_gpu_anchor_two_users(self, fig6_render):
        paper_mean, paper_std = calibration.GPU_MS_TWO_USERS
        assert fig6_render.gpu_ms[2].mean == pytest.approx(
            paper_mean, abs=2 * paper_std
        )

    def test_gpu_anchor_five_users(self, fig6_render):
        paper_mean, paper_std = calibration.GPU_MS_FIVE_USERS
        assert fig6_render.gpu_ms[5].mean == pytest.approx(
            paper_mean, abs=paper_std
        )

    def test_cpu_anchors(self, fig6_render):
        assert fig6_render.cpu_ms[2].mean == pytest.approx(
            calibration.CPU_MS_TWO_USERS[0], abs=0.3
        )
        assert fig6_render.cpu_ms[5].mean == pytest.approx(
            calibration.CPU_MS_FIVE_USERS[0], abs=0.5
        )

    def test_gpu_grows_monotonically(self, fig6_render):
        means = [fig6_render.gpu_ms[n].mean for n in fig6.USER_COUNTS]
        assert all(a < b for a, b in zip(means, means[1:]))

    def test_gpu_p95_near_deadline_at_five(self, fig6_render):
        # Sec. 4.5: the 95th percentile exceeds 9 ms with five users,
        # approaching the ~11 ms budget.
        assert fig6_render.gpu_approaches_deadline()
        assert fig6_render.gpu_ms[5].p95 < calibration.FRAME_DEADLINE_MS + 2

    def test_triangles_grow(self, fig6_render):
        assert fig6_render.triangles_grow_with_users()

    def test_p5_flattens(self, fig6_render):
        # Fig. 6(a): the 5th percentile grows far slower than the mean.
        assert fig6_render.p5_grows_slower_than_mean()


class TestFig6Network:
    @pytest.fixture(scope="class")
    def network(self):
        return fig6.run_network(duration_s=8.0, repeats=2, seed=0)

    def test_downlink_linear_in_users(self, network):
        assert network.grows_linearly()

    def test_two_user_downlink_is_one_stream(self, network):
        assert network.downlink_mbps[2].mean == pytest.approx(
            calibration.SPATIAL_PERSONA_MBPS, abs=0.1
        )

    def test_five_user_downlink_is_four_streams(self, network):
        assert network.downlink_mbps[5].mean == pytest.approx(
            4 * calibration.SPATIAL_PERSONA_MBPS, rel=0.15
        )


class TestAblations:
    def test_a1_delivery_culling_saves_bandwidth(self):
        result = ablations.run_delivery_culling(n_users=5, duration_s=20.0)
        assert 0.02 < result.savings_fraction < 0.6
        assert result.culled_mbps < result.baseline_mbps

    def test_a1_baseline_is_linear_forwarding(self):
        result = ablations.run_delivery_culling(n_users=4, duration_s=10.0)
        assert result.baseline_mbps == pytest.approx(
            3 * calibration.SPATIAL_PERSONA_MBPS
        )

    def test_a1_validates_users(self):
        with pytest.raises(ValueError):
            ablations.run_delivery_culling(n_users=1)

    def test_a2_geo_distribution_helps(self):
        for result in ablations.run_server_policies():
            assert result.geo_distributed_ms < result.initiator_nearest_ms
            assert result.improvement_fraction > 0.1

    def test_a2_intercontinental_exceeds_qoe_threshold(self):
        # Sec. 4.1: one-way Europe-Asia already exceeds the 100 ms QoE
        # threshold, so the worst pair RTT far exceeds 200 ms.
        world = ablations.run_server_policies()[1]
        assert world.initiator_nearest_ms > 200
