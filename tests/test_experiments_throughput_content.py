"""Experiment reproductions: Fig. 4 and the Sec. 4.3 content analysis."""

import pytest

from repro import calibration
from repro.experiments import content_delivery, fig4, rate_adaptation


@pytest.fixture(scope="module")
def fig4_result():
    return fig4.run(duration_s=12.0, repeats=2, seed=0)


class TestFig4:
    def test_spatial_is_cheapest(self, fig4_result):
        means = {k: v.mean for k, v in fig4_result.summaries.items()}
        assert means["F"] == min(means.values())

    def test_headline_ordering(self, fig4_result):
        # Fig. 4: F < Z < F* < T < W.
        assert fig4_result.ordering_holds()

    def test_spatial_under_intro_bound(self, fig4_result):
        assert fig4_result.summaries["F"].mean < 0.7

    def test_webex_over_four_mbps(self, fig4_result):
        assert fig4_result.summaries["W"].mean > 4.0

    def test_anchor_means(self, fig4_result):
        for label, target in fig4.PAPER_MEANS_MBPS.items():
            assert fig4_result.summaries[label].mean == pytest.approx(
                target, rel=0.15
            )

    def test_format_table_lists_all_configurations(self, fig4_result):
        table = fig4_result.format_table()
        for label in fig4.CONFIGURATIONS:
            assert f"\n{label:4s}" in table or label in table


class TestMeshStreaming:
    def test_bitrate_matches_paper(self):
        result = content_delivery.run_mesh_streaming(seed=0)
        paper_mean, paper_std = calibration.DRACO_STREAMING_MBPS
        assert result.summary.mean == pytest.approx(paper_mean, abs=2 * paper_std)

    def test_elimination_argument(self):
        assert content_delivery.run_mesh_streaming(seed=0).dwarfs_spatial_persona()

    def test_five_meshes(self):
        assert len(content_delivery.run_mesh_streaming(seed=0).per_mesh_mbps) == 5


class TestKeypointStreaming:
    def test_rate_matches_paper(self):
        result = content_delivery.run_keypoint_streaming(frames=400, seed=0)
        paper_mean, paper_std = calibration.KEYPOINT_STREAMING_MBPS
        assert result.mbps.mean == pytest.approx(paper_mean, abs=3 * paper_std)

    def test_rate_matches_persona_stream(self):
        result = content_delivery.run_keypoint_streaming(frames=400, seed=0)
        assert result.matches_spatial_persona(tolerance_mbps=0.1)


class TestDisplayLatency:
    @pytest.fixture(scope="class")
    def sweep(self):
        return content_delivery.run_display_latency(seed=0)

    def test_local_reconstruction_invariant(self, sweep):
        # Sec. 4.3: the difference stays < 16 ms at any injected delay.
        assert sweep.local_mode_invariant()

    def test_sender_rendered_tracks_delay(self, sweep):
        assert sweep.remote_mode_tracks_delay()

    def test_sweep_covers_paper_range(self, sweep):
        delays = [d for d, _ in sweep.series["local"]]
        assert min(delays) == 0.0
        assert max(delays) == 1000.0


class TestRateAdaptation:
    @pytest.fixture(scope="class")
    def sweep(self):
        return rate_adaptation.run(
            limits_kbps=(2000.0, 1000.0, 700.0, 600.0, 400.0),
            duration_s=8.0, seed=0,
        )

    def test_cutoff_at_700_kbps(self, sweep):
        assert sweep.cutoff_kbps() == calibration.RATE_ADAPTATION_CUTOFF_KBPS

    def test_no_rate_adaptation(self, sweep):
        # The sender never lowers its offered rate (Sec. 4.3).
        assert sweep.no_rate_adaptation()

    def test_generous_limits_healthy(self, sweep):
        by_limit = {p.limit_kbps: p for p in sweep.points}
        assert not by_limit[2000.0].poor_connection
        assert by_limit[2000.0].availability > 0.97

    def test_starved_limits_fail(self, sweep):
        by_limit = {p.limit_kbps: p for p in sweep.points}
        assert by_limit[400.0].poor_connection
        assert by_limit[400.0].availability < 0.8

    def test_invalid_limit_rejected(self):
        with pytest.raises(ValueError):
            rate_adaptation.measure_at_limit(0.0)
