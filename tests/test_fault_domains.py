"""Property suite for correlated fault domains and the seeding contract.

Covers the gauntlet's sampling layer:

* :func:`repro.faults.schedule.derive_seed` — the documented
  sha256-salted derivation rule (stable values, salt sensitivity);
* :meth:`FaultSchedule.random` draw order — replayed against an
  independent reference generator, so an accidental extra draw (the
  pre-gauntlet eager-magnitude bug) can never sneak back in;
* domain-event sampling — determinism, per-kind stream independence
  (``mixed`` is exactly the union of the singles), duration/coverage
  bounds;
* fan-out — coverage fractions honored, no lane hit twice by one
  event, region membership respected;
* the vectorized impairment timeline against its scalar oracle;
* the :meth:`FaultInjector.arm` batch-engine guard.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.faults.domains import (
    SCENARIOS,
    DomainEvent,
    DomainKind,
    build_plan,
    fan_out,
    impairment_timeline,
    impairment_timeline_scalar,
    lane_schedules,
    sample_domain_events,
    scenario_names,
    server_down_timeline,
)
from repro.faults.injector import FaultInjector, combine_impairment
from repro.faults.schedule import (
    SERVER_TARGET,
    FaultKind,
    FaultSchedule,
    derive_seed,
)

seeds = st.integers(min_value=0, max_value=2**31 - 1)


class TestDeriveSeed:
    def test_documented_rule(self):
        # The rule is part of the cross-process determinism contract:
        # sha256("faults:{base}:{salt}...") first 4 bytes little-endian.
        import hashlib

        digest = hashlib.sha256(b"faults:7:lane:3").digest()
        assert derive_seed(7, "lane", 3) == int.from_bytes(
            digest[:4], "little")

    @given(seeds)
    def test_deterministic_and_salt_sensitive(self, seed):
        assert derive_seed(seed, "lane", 1) == derive_seed(seed, "lane", 1)
        assert derive_seed(seed, "lane", 1) != derive_seed(seed, "lane", 2)
        assert derive_seed(seed, "lane", 1) != derive_seed(seed, "fanout", 1)

    @given(seeds)
    def test_in_uint32_range(self, seed):
        assert 0 <= derive_seed(seed, "domain", "ap-storm") < 2**32


class TestRandomScheduleDrawOrder:
    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_replay_against_reference(self, seed):
        """The per-event draw order is a contract: gap, kind, duration,
        target (skipped for server outages), one magnitude draw for
        range kinds and none otherwise."""
        from repro.faults.schedule import _MAGNITUDE_RANGES

        duration_s = 40.0
        targets = ["U1", "U2", "U3"]
        schedule = FaultSchedule.random(seed, duration_s, targets,
                                        events_per_minute=8.0)
        rng = np.random.default_rng(seed)
        allowed = list(FaultKind)
        expected = []
        time_s = float(rng.exponential(60.0 / 8.0))
        while time_s < duration_s:
            kind = allowed[int(rng.integers(len(allowed)))]
            duration = float(np.clip(rng.exponential(1.5), 0.25,
                                     max(0.5, duration_s - time_s)))
            if kind is FaultKind.SERVER_OUTAGE:
                target = SERVER_TARGET
            else:
                target = targets[int(rng.integers(len(targets)))]
            bounds = _MAGNITUDE_RANGES.get(kind)
            magnitude = float(rng.uniform(*bounds)) if bounds else 0.0
            expected.append((kind, target, time_s, duration, magnitude))
            time_s += float(rng.exponential(60.0 / 8.0))
        got = [(e.kind, e.target, e.start_s, e.duration_s, e.magnitude)
               for e in sorted(schedule, key=lambda e: e.start_s)]
        assert got == sorted(expected, key=lambda e: e[2])


class TestDomainSampling:
    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_deterministic(self, seed):
        a = sample_domain_events("mixed", seed, 90.0, 5)
        b = sample_domain_events("mixed", seed, 90.0, 5)
        assert a == b

    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_mixed_is_union_of_singles(self, seed):
        """Per-kind generators draw from independent derived streams, so
        a kind's events are identical alone or inside ``mixed``."""
        mixed = sample_domain_events("mixed", seed, 90.0, 5)
        union = []
        for name in ("region-outage", "ap-storm", "brownout",
                     "flash-crowd"):
            union.extend(sample_domain_events(name, seed, 90.0, 5))
        assert sorted(mixed, key=lambda e: (e.start_s, e.kind.value)) == \
            sorted(union, key=lambda e: (e.start_s, e.kind.value))

    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_bounds(self, seed):
        for event in sample_domain_events("mixed", seed, 60.0, 4):
            assert 0.0 <= event.start_s < 60.0
            assert event.end_s <= 60.0 + 1e-9
            assert 0 <= event.region_index < 4
            assert 0.0 < event.coverage <= 1.0

    def test_none_scenario_is_empty(self):
        assert sample_domain_events("none", 0, 60.0, 3) == ()

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            sample_domain_events("meteor-strike", 0, 60.0, 3)

    def test_catalog_names(self):
        assert set(scenario_names()) == set(SCENARIOS)
        assert "mixed" in scenario_names() and "none" in scenario_names()


lane_maps = st.lists(st.integers(min_value=0, max_value=5),
                     min_size=1, max_size=400)


class TestFanOut:
    @given(seeds, lane_maps,
           st.floats(min_value=0.05, max_value=1.0, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_no_lane_hit_twice_and_membership(self, seed, regions, cov):
        lane_regions = np.array(regions)
        event = DomainEvent(DomainKind.AP_STORM, 2, 1.0, 5.0, 0.3, cov)
        lanes = fan_out(event, 0, seed, lane_regions)
        assert len(np.unique(lanes)) == len(lanes)
        assert all(lane_regions[lane] == 2 for lane in lanes)

    @given(seeds, st.floats(min_value=0.05, max_value=0.95,
                            allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_coverage_fraction(self, seed, cov):
        lane_regions = np.zeros(200, dtype=np.int64)
        event = DomainEvent(DomainKind.AP_STORM, 0, 1.0, 5.0, 0.3, cov)
        lanes = fan_out(event, 3, seed, lane_regions)
        assert len(lanes) == int(np.ceil(cov * 200))

    def test_full_coverage_kinds_take_whole_region(self):
        lane_regions = np.array([0, 1, 0, 1, 1])
        for kind in (DomainKind.REGION_OUTAGE, DomainKind.BACKBONE_BROWNOUT,
                     DomainKind.FLASH_CROWD):
            event = DomainEvent(kind, 1, 1.0, 5.0, 20.0, 1.0)
            assert fan_out(event, 0, 0, lane_regions).tolist() == [1, 3, 4]

    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_deterministic_per_event_index(self, seed):
        lane_regions = np.zeros(50, dtype=np.int64)
        event = DomainEvent(DomainKind.AP_STORM, 0, 1.0, 5.0, 0.3, 0.4)
        a = fan_out(event, 7, seed, lane_regions)
        b = fan_out(event, 7, seed, lane_regions)
        c = fan_out(event, 8, seed, lane_regions)
        assert np.array_equal(a, b)
        # Different event index draws an independent subsample.
        assert not np.array_equal(a, c) or len(a) == 50


class TestImpairmentTimeline:
    @given(seeds, st.integers(min_value=1, max_value=60))
    @settings(max_examples=25, deadline=None)
    def test_vectorized_matches_scalar_oracle(self, seed, n_lanes):
        lane_regions = np.arange(n_lanes) % 4
        plan = build_plan("mixed", seed, 60.0, lane_regions, n_regions=4)
        ticks = np.arange(0.0, 60.0, 1.0)
        vec = impairment_timeline(plan, ticks)
        ref = impairment_timeline_scalar(plan, ticks)
        assert np.array_equal(vec.delay_ms, ref.delay_ms)
        assert np.array_equal(vec.wifi_rate, ref.wifi_rate)
        assert np.array_equal(vec.load, ref.load)

    def test_empty_plan_is_identity(self):
        plan = build_plan("none", 0, 30.0, np.zeros(5, dtype=np.int64))
        ticks = np.arange(0.0, 30.0, 1.0)
        imp = impairment_timeline(plan, ticks)
        assert not imp.delay_ms.any()
        assert (imp.wifi_rate == 1.0).all()
        assert (imp.load == 1.0).all()

    def test_server_down_timeline_covers_window(self):
        events = (DomainEvent(DomainKind.REGION_OUTAGE, 1, 5.0, 10.0,
                              0.0, 1.0),)
        ticks = np.arange(0.0, 30.0, 1.0)
        down = server_down_timeline(events, np.array([0, 1, 1, 2]), ticks)
        assert down[:5].sum() == 0
        assert down[5:15, 1].all() and down[5:15, 2].all()
        assert not down[:, 0].any() and not down[:, 3].any()
        assert down[15:].sum() == 0


class TestLaneSchedules:
    def test_projection_kinds(self):
        lane_regions = np.array([0, 0, 1])
        events = (
            DomainEvent(DomainKind.REGION_OUTAGE, 0, 1.0, 2.0, 0.0, 1.0),
            DomainEvent(DomainKind.AP_STORM, 0, 4.0, 2.0, 0.3, 1.0),
            DomainEvent(DomainKind.BACKBONE_BROWNOUT, 1, 7.0, 2.0, 25.0,
                        1.0),
            DomainEvent(DomainKind.FLASH_CROWD, 1, 10.0, 2.0, 3.0, 1.0),
        )
        from repro.faults.domains import DomainPlan

        plan = DomainPlan(
            scenario="mixed", seed=0, duration_s=15.0, n_lanes=3,
            events=events,
            lane_events=tuple(fan_out(e, i, 0, lane_regions)
                              for i, e in enumerate(events)))
        schedules = lane_schedules(plan, "U2")
        assert [e.kind for e in schedules[0]] == [
            FaultKind.SERVER_OUTAGE, FaultKind.WIFI_DEGRADATION]
        assert schedules[0].for_target(SERVER_TARGET)[0].start_s == 1.0
        # Flash crowds act on server load, not on a lane's links.
        assert [e.kind for e in schedules[2]] == [FaultKind.JITTER_BURST]
        assert schedules[2].events[0].magnitude == 25.0

    def test_covered_lanes_share_frozen_events(self):
        """Identical event values across lanes are what lets the cohort
        injector group them into one cohort apply."""
        lane_regions = np.zeros(4, dtype=np.int64)
        plan = build_plan("brownout", 11, 120.0, lane_regions)
        schedules = lane_schedules(plan, "U2")
        nonempty = [s for s in schedules if s]
        if len(nonempty) >= 2:
            assert nonempty[0].events == nonempty[1].events


class TestInjectorBatchGuard:
    def test_arm_rejects_lane_simulator(self):
        from repro.core.testbed import default_two_user_testbed
        from repro.netsim.batch import BatchSimulator
        from repro.vca.profiles import PROFILES

        batch = BatchSimulator()
        lane = batch.add_lane()
        session = default_two_user_testbed().session(
            PROFILES["FaceTime"], sim=lane)
        injector = FaultInjector(
            lane, session.network,
            FaultSchedule.scripted([]), address_of={},
        )
        with pytest.raises(TypeError, match="CohortInjector"):
            injector.arm()

    def test_combine_impairment_matches_scalar_semantics(self):
        from repro.faults.schedule import FaultEvent

        events = [
            FaultEvent(FaultKind.LOSS_BURST, "U2", 0.0, 1.0, 0.1),
            FaultEvent(FaultKind.WIFI_DEGRADATION, "U2", 0.0, 1.0, 0.5),
            FaultEvent(FaultKind.JITTER_BURST, "U2", 0.0, 1.0, 10.0),
        ]
        blackout, loss, jitter_ms, rate = combine_impairment(events)
        assert not blackout
        assert loss == pytest.approx(1.0 - 0.9 * 0.98)
        assert jitter_ms == pytest.approx(18.0)
        assert rate == 0.5
