"""Fault schedules, the injector, and the engine's cancellable handles."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.testbed import default_two_user_testbed
from repro.faults import (
    SERVER_TARGET,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultSchedule,
    ResilienceConfig,
    standard_disturbance,
)
from repro.netsim.engine import Simulator
from repro.vca.profiles import PROFILES


class TestEventHandles:
    def test_cancel_prevents_firing(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(0.5, lambda: fired.append(1))
        assert handle.active
        assert sim.cancel(handle)
        sim.run()
        assert fired == []
        assert handle.cancelled and not handle.fired

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        handle = sim.schedule(0.1, lambda: None)
        sim.run()
        assert handle.fired
        assert not sim.cancel(handle)

    def test_double_cancel_is_noop(self):
        sim = Simulator()
        handle = sim.schedule(0.1, lambda: None)
        assert sim.cancel(handle)
        assert not sim.cancel(handle)
        sim.run()

    def test_cancelled_siblings_leave_others_untouched(self):
        sim = Simulator()
        fired = []
        handles = [
            sim.schedule(0.1 * (i + 1), lambda i=i: fired.append(i))
            for i in range(5)
        ]
        sim.cancel(handles[1])
        sim.cancel(handles[3])
        sim.run()
        assert fired == [0, 2, 4]


class TestFaultSchedule:
    def test_events_sorted_by_onset(self):
        late = FaultEvent(FaultKind.LOSS_BURST, "U1", 5.0, 1.0, 0.1)
        early = FaultEvent(FaultKind.LOSS_BURST, "U1", 1.0, 1.0, 0.1)
        schedule = FaultSchedule((late, early))
        assert [e.start_s for e in schedule] == [1.0, 5.0]
        assert schedule.horizon_s == 6.0

    def test_event_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(FaultKind.LOSS_BURST, "U1", -1.0, 1.0, 0.1)
        with pytest.raises(ValueError):
            FaultEvent(FaultKind.LOSS_BURST, "U1", 0.0, 0.0, 0.1)
        with pytest.raises(ValueError):
            FaultEvent(FaultKind.LOSS_BURST, "U1", 0.0, 1.0, 1.5)
        with pytest.raises(ValueError):
            FaultEvent(FaultKind.SERVER_OUTAGE, "U1", 0.0, 1.0)

    def test_active_at_half_open(self):
        event = FaultEvent(FaultKind.LINK_BLACKOUT, "U1", 1.0, 2.0)
        assert not event.active_at(0.99)
        assert event.active_at(1.0)
        assert not event.active_at(3.0)

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_random_schedule_deterministic(self, seed):
        kwargs = dict(duration_s=60.0, targets=["U1", "U2"])
        assert (FaultSchedule.random(seed, **kwargs).events
                == FaultSchedule.random(seed, **kwargs).events)

    def test_random_schedule_respects_bounds(self):
        schedule = FaultSchedule.random(
            7, duration_s=120.0, targets=["U1"], include_server=False
        )
        assert schedule  # 120 s at the default rate: events exist
        for event in schedule:
            assert event.kind is not FaultKind.SERVER_OUTAGE
            assert 0.0 <= event.start_s < 120.0
            assert event.target == "U1"

    def test_standard_disturbance_needs_room(self):
        with pytest.raises(ValueError):
            standard_disturbance(5.0)
        gauntlet = standard_disturbance(30.0)
        assert len(gauntlet) == 5
        assert {e.kind for e in gauntlet} == {
            FaultKind.LINK_BLACKOUT, FaultKind.SERVER_OUTAGE,
            FaultKind.LOSS_BURST, FaultKind.BANDWIDTH_COLLAPSE,
            FaultKind.WIFI_DEGRADATION,
        }


def _resilient_session(profile="FaceTime", schedule=None, seed=1):
    testbed = default_two_user_testbed()
    return testbed.session(
        PROFILES[profile], seed=seed,
        faults=schedule if schedule is not None else FaultSchedule(),
        resilience=ResilienceConfig(),
    )


class TestInjector:
    def test_unknown_target_rejected_at_build(self):
        schedule = FaultSchedule.scripted([
            FaultEvent(FaultKind.LINK_BLACKOUT, "nobody", 1.0, 1.0)
        ])
        with pytest.raises(KeyError):
            _resilient_session(schedule=schedule)

    def test_apply_revert_log_pairs(self):
        schedule = standard_disturbance(30.0)
        session = _resilient_session(schedule=schedule)
        result = session.run(30.0)
        log = result.resilience.fault_log
        applies = [e for e in log if e.action == "apply"]
        reverts = [e for e in log if e.action == "revert"]
        assert len(applies) == len(schedule) == len(reverts)
        for entry in applies:
            assert entry.time_s == pytest.approx(entry.event.start_s)

    def test_server_outage_skipped_on_p2p(self):
        # Two Vision Pros on Zoom run peer-to-peer: no relay to lose.
        session = _resilient_session("Zoom", standard_disturbance(30.0))
        assert session.p2p
        result = session.run(30.0)
        skips = [e for e in result.resilience.fault_log
                 if e.action == "skip"]
        assert [e.event.kind for e in skips] == [FaultKind.SERVER_OUTAGE]

    def test_blackout_stops_media_and_inflight(self):
        session = _resilient_session(schedule=FaultSchedule.scripted([
            FaultEvent(FaultKind.LINK_BLACKOUT, "U2", 2.0, 1.5),
        ]))
        result = session.run(6.0)
        tracker = session.resilience_runtime.trackers["U1"]
        arrivals = tracker.media_arrivals(result.addresses["U2"])
        # Nothing sent at t in [2.0, 3.5] can arrive, and packets already
        # in flight toward the dead attachment were revoked.
        in_gap = [t for t in arrivals if 2.0 + 0.05 < t < 3.5]
        assert not in_gap
        assert any(t > 3.6 for t in arrivals)  # media resumes after

    def test_overlapping_faults_recombine_on_each_edge(self):
        sim_events = [
            FaultEvent(FaultKind.LOSS_BURST, "U2", 1.0, 4.0, 0.5),
            FaultEvent(FaultKind.LOSS_BURST, "U2", 2.0, 1.0, 0.5),
        ]
        session = _resilient_session(schedule=FaultSchedule.scripted(sim_events))
        network = session.network
        address = session._addresses["U2"]
        observed = {}

        def probe(t):
            fault = network.fault_of(address)
            observed[t] = fault.loss if fault is not None else 0.0

        for t in (0.5, 1.5, 2.5, 3.5, 5.5):
            session.sim.schedule_at(t, lambda t=t: probe(t))
        session.run(6.0)
        assert observed[0.5] == 0.0
        assert observed[1.5] == pytest.approx(0.5)
        assert observed[2.5] == pytest.approx(0.75)  # 1 - 0.5 * 0.5
        assert observed[3.5] == pytest.approx(0.5)
        assert observed[5.5] == 0.0

    def test_wifi_degradation_restores_ap(self):
        session = _resilient_session(schedule=FaultSchedule.scripted([
            FaultEvent(FaultKind.WIFI_DEGRADATION, "U2", 1.0, 1.0, 0.3),
        ]))
        network = session.network
        address = session._addresses["U2"]
        seen = {}
        session.sim.schedule_at(1.5, lambda: seen.update(
            during=network.ap_of(address).degradation))
        session.run(4.0)
        assert seen["during"] == pytest.approx(0.3)
        assert network.ap_of(address).degradation == 1.0

    def test_same_seed_same_fault_log(self):
        schedule = standard_disturbance(20.0)
        logs = []
        for _ in range(2):
            result = _resilient_session(schedule=schedule, seed=3).run(20.0)
            logs.append([
                (e.time_s, e.action, e.event.kind, e.address)
                for e in result.resilience.fault_log
            ])
        assert logs[0] == logs[1]


class TestInjectorUnit:
    def test_is_down_tracks_blackout_window(self):
        session = _resilient_session(schedule=FaultSchedule.scripted([
            FaultEvent(FaultKind.LINK_BLACKOUT, "U1", 1.0, 1.0),
        ]))
        injector = session.resilience_runtime.injector
        assert isinstance(injector, FaultInjector)
        address = session._addresses["U1"]
        seen = {}
        session.sim.schedule_at(1.5, lambda: seen.update(
            down=injector.is_down(address)))
        session.run(3.0)
        assert seen["down"] is True
        assert not injector.is_down(address)
        assert injector.active_events() == []

    def test_server_target_resolves_current_relay(self):
        session = _resilient_session(schedule=FaultSchedule.scripted([
            FaultEvent(FaultKind.SERVER_OUTAGE, SERVER_TARGET, 1.0, 1.0),
        ]))
        original = session.server.address
        result = session.run(5.0)
        applies = [e for e in result.resilience.fault_log
                   if e.action == "apply"]
        assert applies[0].address == original
