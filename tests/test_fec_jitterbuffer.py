"""FEC framing/recovery and the jitter buffer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.transport.fec import FecDecoder, FecEncoder, FecPacket
from repro.vca.jitterbuffer import (
    JitterBuffer,
    minimal_playout_delay_ms,
    persona_playout_budget_ms,
)


def payloads(n, seed=0, lo=100, hi=200):
    rng = np.random.default_rng(seed)
    return [
        bytes(rng.integers(0, 256, rng.integers(lo, hi), dtype=np.uint8))
        for _ in range(n)
    ]


class TestFecFraming:
    def test_packet_roundtrip(self):
        packet = FecPacket(group=3, index=1, k=4, payload=b"hello",
                           is_parity=False)
        assert FecPacket.parse(packet.pack()) == packet

    def test_parity_emitted_every_k(self):
        encoder = FecEncoder(k=4)
        emitted = []
        for p in payloads(8):
            emitted.extend(encoder.protect(p))
        parities = [p for p in emitted if p.is_parity]
        assert len(parities) == 2
        assert encoder.parity_packets_sent == 2

    def test_overhead_fraction(self):
        assert FecEncoder(k=5).overhead_fraction == pytest.approx(0.2)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            FecEncoder(k=1)

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            FecPacket.parse(b"\x07" + b"\x00" * 16)


class TestFecRecovery:
    def test_no_loss_passthrough(self):
        encoder, decoder = FecEncoder(k=4), FecDecoder()
        sent = payloads(8, seed=1)
        got = []
        for p in sent:
            for packet in encoder.protect(p):
                got.extend(decoder.receive(packet))
        assert got == sent
        assert decoder.recovered == 0

    def test_single_loss_per_group_recovered(self):
        encoder, decoder = FecEncoder(k=4), FecDecoder()
        sent = payloads(12, seed=2)
        got = []
        for i, p in enumerate(sent):
            for packet in encoder.protect(p):
                if not packet.is_parity and packet.index == 2:
                    continue  # drop one source per group
                got.extend(decoder.receive(packet))
        assert sorted(got, key=len) == sorted(sent, key=len)
        assert set(got) == set(sent)
        assert decoder.recovered == 3

    def test_variable_lengths_recovered_exactly(self):
        encoder, decoder = FecEncoder(k=3), FecDecoder()
        sent = payloads(6, seed=3, lo=50, hi=500)
        got = []
        for packet_list in map(encoder.protect, sent):
            for packet in packet_list:
                if not packet.is_parity and packet.index == 0:
                    continue
                got.extend(decoder.receive(packet))
        assert set(got) == set(sent)

    def test_double_loss_not_recoverable(self):
        encoder, decoder = FecEncoder(k=4), FecDecoder()
        sent = payloads(4, seed=4)
        got = []
        for packet_list in map(encoder.protect, sent):
            for packet in packet_list:
                if not packet.is_parity and packet.index in (0, 1):
                    continue
                got.extend(decoder.receive(packet))
        assert len(got) == 2
        assert decoder.recovered == 0

    def test_parity_loss_harmless(self):
        encoder, decoder = FecEncoder(k=4), FecDecoder()
        sent = payloads(4, seed=5)
        got = []
        for packet_list in map(encoder.protect, sent):
            for packet in packet_list:
                if packet.is_parity:
                    continue
                got.extend(decoder.receive(packet))
        assert got == sent

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=2, max_value=6),
           st.integers(min_value=0, max_value=5))
    def test_any_single_loss_position_recovered(self, k, lost_index):
        lost_index = lost_index % k
        encoder, decoder = FecEncoder(k=k), FecDecoder()
        sent = payloads(k, seed=6)
        got = []
        for packet_list in map(encoder.protect, sent):
            for packet in packet_list:
                if not packet.is_parity and packet.index == lost_index:
                    continue
                got.extend(decoder.receive(packet))
        assert set(got) == set(sent)


class TestFecAblation:
    def test_fec_beats_plain_under_loss(self):
        from repro.experiments import ablations

        result = ablations.run_fec_resilience(
            loss_rates=(0.02, 0.05), duration_s=5.0, seed=0
        )
        assert result.fec_always_helps()
        for point in result.points:
            assert point.availability_fec > point.availability_plain
            assert point.availability_fec > 0.98


def stream(jitter_std_ms, n=500, base_ms=20.0, seed=0, fps=90.0):
    rng = np.random.default_rng(seed)
    out = []
    for i in range(n):
        send = i / fps
        arrival = send + (base_ms + max(0.0, rng.normal(0, jitter_std_ms))) / 1000.0
        out.append((send, arrival))
    return out


class TestJitterBuffer:
    def test_zero_jitter_zero_late(self):
        buffer = JitterBuffer(playout_delay_ms=25.0)
        report = buffer.play(stream(0.0))
        assert report.late_fraction == 0.0
        assert report.mean_wait_ms == pytest.approx(5.0, abs=0.2)

    def test_insufficient_delay_late_frames(self):
        buffer = JitterBuffer(playout_delay_ms=19.0)
        report = buffer.play(stream(0.0))
        assert report.late_fraction == 1.0

    def test_jitter_requires_headroom(self):
        tight = JitterBuffer(playout_delay_ms=21.0).play(stream(5.0, seed=1))
        roomy = JitterBuffer(playout_delay_ms=40.0).play(stream(5.0, seed=1))
        assert tight.late_fraction > roomy.late_fraction

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            JitterBuffer(-1.0)

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError):
            JitterBuffer(10.0).play([])

    def test_minimal_delay_meets_budget(self):
        data = stream(4.0, seed=2)
        delay = minimal_playout_delay_ms(data, late_budget=0.01)
        report = JitterBuffer(delay).play(data)
        assert report.late_fraction <= 0.01

    def test_minimal_delay_is_tight(self):
        data = stream(4.0, seed=2)
        delay = minimal_playout_delay_ms(data, late_budget=0.01)
        tighter = JitterBuffer(max(0.0, delay - 2.0)).play(data)
        assert tighter.late_fraction > 0.01

    def test_impossible_budget_raises(self):
        data = [(0.0, 10.0)]  # ten-second delay
        with pytest.raises(ValueError):
            minimal_playout_delay_ms(data, max_delay_ms=100.0)

    def test_analytic_budget_matches_empirical(self):
        data = stream(3.0, n=4000, seed=3)
        empirical = minimal_playout_delay_ms(data, late_budget=0.01)
        analytic = persona_playout_budget_ms(
            network_jitter_std_ms=3.0, base_one_way_ms=20.0
        )
        # Truncated-Gaussian jitter: the analytic Gaussian quantile is an
        # upper-side estimate within a few ms.
        assert empirical == pytest.approx(analytic, abs=4.0)

    def test_persona_jitter_fits_display_budget(self):
        # Testbed jitter (~2 ms) costs only a few ms of playout delay on
        # top of the base one-way path — consistent with the < 16 ms
        # display-latency difference bound of Sec. 4.3.
        budget = persona_playout_budget_ms(2.0, 0.0)
        assert budget < 6.0
