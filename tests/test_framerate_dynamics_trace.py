"""Frame-rate accounting, dynamic sessions, and trace persistence."""

import pytest

from repro import calibration
from repro.netsim.trace import load_trace, save_trace
from repro.rendering.framerate import (
    FrameRateReport,
    analyze_frame_rate,
    vsync_slots,
)
from repro.rendering.pipeline import FrameStats, RenderPipeline
from repro.vca.dynamics import DynamicSession
from repro.vca.profiles import FACETIME, ZOOM


def frame(gpu_ms):
    return FrameStats(0, 1000, gpu_ms=gpu_ms, cpu_ms=5.0, decisions=())


class TestVsyncSlots:
    def test_on_time_frame_one_slot(self):
        assert vsync_slots(9.0) == 1

    def test_overrun_takes_two_slots(self):
        assert vsync_slots(12.0) == 2

    def test_double_overrun(self):
        assert vsync_slots(23.0) == 3

    def test_zero_time_still_one_slot(self):
        assert vsync_slots(0.0) == 1

    def test_invalid_deadline(self):
        with pytest.raises(ValueError):
            vsync_slots(5.0, deadline_ms=0)


class TestFrameRateAnalysis:
    def test_all_on_time_hits_target(self):
        report = analyze_frame_rate([frame(8.0)] * 90)
        assert report.effective_fps == pytest.approx(90.0)
        assert report.miss_rate == 0.0
        assert report.meets_target()

    def test_half_missed_drops_rate(self):
        frames = [frame(8.0), frame(13.0)] * 45
        report = analyze_frame_rate(frames)
        assert report.effective_fps == pytest.approx(60.0)
        assert report.miss_rate == pytest.approx(0.5)
        assert not report.meets_target()

    def test_worst_run_counted(self):
        frames = [frame(8.0)] * 5 + [frame(13.0)] * 3 + [frame(8.0)] * 5
        report = analyze_frame_rate(frames)
        assert report.worst_consecutive_misses == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            analyze_frame_rate([])

    def test_five_user_session_mostly_meets_target(self):
        # Sec. 4.5: even at five users the mean GPU time is under the
        # deadline; only the tail misses.
        pipe = RenderPipeline(seed=0)
        frames = pipe.render_session(["a", "b", "c", "d"], duration_s=20.0)
        report = analyze_frame_rate(frames)
        assert report.effective_fps > 85.0
        assert 0.0 <= report.miss_rate < 0.1


class TestDynamicSession:
    def test_downlink_steps_with_membership(self):
        session = DynamicSession(
            FACETIME,
            [(0.0, "U2", True), (5.0, "U3", True), (10.0, "U3", False)],
            seed=0,
        )
        result = session.run(15.0)
        one = result.downlink_mbps_between(1.0, 4.5)
        two = result.downlink_mbps_between(6.0, 9.5)
        back = result.downlink_mbps_between(11.0, 14.5)
        assert two == pytest.approx(2 * one, rel=0.1)
        assert back == pytest.approx(one, rel=0.1)

    def test_cap_enforced_at_every_instant(self):
        schedule = [(float(i), f"U{i + 2}", True) for i in range(5)]
        with pytest.raises(ValueError, match="cap"):
            DynamicSession(FACETIME, schedule)

    def test_cap_ok_with_interleaved_leaves(self):
        schedule = [
            (0.0, "U2", True), (1.0, "U3", True), (2.0, "U4", True),
            (3.0, "U5", True), (4.0, "U2", False), (5.0, "U6", True),
        ]
        DynamicSession(FACETIME, schedule)  # must not raise

    def test_leave_before_join_rejected(self):
        with pytest.raises(ValueError, match="before joining"):
            DynamicSession(FACETIME, [(1.0, "U2", False)])

    def test_observer_cannot_leave(self):
        with pytest.raises(ValueError, match="observer"):
            DynamicSession(FACETIME, [(1.0, "U1", False)])

    def test_requires_spatial_profile(self):
        with pytest.raises(ValueError, match="spatial"):
            DynamicSession(ZOOM, [(0.0, "U2", True)])

    def test_empty_interval_rejected(self):
        session = DynamicSession(FACETIME, [(0.0, "U2", True)], seed=1)
        result = session.run(3.0)
        with pytest.raises(ValueError):
            result.downlink_mbps_between(2.0, 2.0)


class TestTracePersistence:
    def _capture(self):
        from repro.core.testbed import default_two_user_testbed

        result = default_two_user_testbed().session(FACETIME, seed=0).run(2.0)
        return result.capture_of("U1")

    def test_roundtrip(self, tmp_path):
        capture = self._capture()
        path = tmp_path / "u1.rptr"
        save_trace(capture, path)
        loaded = load_trace(path)
        assert loaded.host_address == capture.host_address
        assert len(loaded.records) == len(capture.records)
        first, loaded_first = capture.records[0], loaded.records[0]
        assert loaded_first.timestamp == pytest.approx(first.timestamp)
        assert loaded_first.wire_bytes == first.wire_bytes
        assert loaded_first.snap == first.snap
        assert loaded_first.flow == first.flow

    def test_analysis_works_on_loaded_trace(self, tmp_path):
        from repro.analysis.protocol import classify_capture

        capture = self._capture()
        path = tmp_path / "u1.rptr"
        save_trace(capture, path)
        report = classify_capture(load_trace(path))
        assert report.dominant == "quic"

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.rptr"
        path.write_bytes(b"NOPE" + b"\x00" * 32)
        with pytest.raises(ValueError):
            load_trace(path)

    def test_truncated_rejected(self, tmp_path):
        capture = self._capture()
        path = tmp_path / "u1.rptr"
        save_trace(capture, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(ValueError):
            load_trace(path)
