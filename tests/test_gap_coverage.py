"""Coverage for behaviours the focused suites leave untested."""

import numpy as np
import pytest

from repro.core.testbed import default_two_user_testbed
from repro.geo.regions import city
from repro.netsim.capture import Direction
from repro.netsim.engine import Simulator
from repro.netsim.network import Network
from repro.netsim.node import Host
from repro.netsim.shaper import TrafficShaper
from repro.vca.media import LayeredSemanticSource, MEDIA_PORT
from repro.vca.profiles import FACETIME, WEBEX


class TestSessionDeterminism:
    def test_same_seed_same_traffic(self):
        def run(seed):
            result = default_two_user_testbed().session(
                FACETIME, seed=seed
            ).run(4.0)
            cap = result.capture_of("U1")
            return (
                len(cap.records),
                cap.total_bytes(Direction.UPLINK),
            )

        assert run(7) == run(7)

    def test_different_seed_different_payload_sizes(self):
        def sizes(seed):
            result = default_two_user_testbed().session(
                WEBEX, seed=seed
            ).run(3.0)
            return [
                r.wire_bytes
                for r in result.capture_of("U1").filter(
                    direction=Direction.UPLINK
                )
            ][:50]

        assert sizes(1) != sizes(2)


class TestLayeredSource:
    def _run(self, layer, duration=2.0):
        from repro.keypoints.layered import Layer

        sim = Simulator()
        network = Network(sim)
        a = Host("10.0.0.2", city("san jose"))
        b = Host("10.0.1.2", city("dallas"))
        network.attach(a)
        network.attach(b)
        b.bind(MEDIA_PORT, lambda p: None)
        capture = network.start_capture(a.address)
        source = LayeredSemanticSource(b"k" * 32, layer, seed=0, pool_size=32)
        source.attach(sim, a, b.address)
        sim.run(until=duration)
        return capture.total_bytes(Direction.UPLINK) * 8 / duration / 1e6

    def test_layer_rates_ordered_on_the_wire(self):
        from repro.keypoints.layered import Layer

        base = self._run(Layer.BASE)
        standard = self._run(Layer.STANDARD)
        full = self._run(Layer.FULL)
        assert base < standard < full
        assert base < 0.3
        assert full < 0.8

    def test_pool_validation(self):
        from repro.keypoints.layered import Layer

        with pytest.raises(ValueError):
            LayeredSemanticSource(b"k", Layer.BASE, pool_size=0)


class TestShaperCombinations:
    def test_delay_plus_rate_limit(self):
        sim = Simulator()
        network = Network(sim)
        a = Host("10.0.0.2", city("san jose"))
        b = Host("10.0.1.2", city("dallas"))
        network.attach(a)
        network.attach(b)
        arrivals = []
        b.bind(5000, lambda p: arrivals.append(sim.now))
        shaper = TrafficShaper(rate_bps=1e6, delay_ms=100.0)
        network.set_uplink_shaper(a.address, shaper)
        from repro.netsim.packet import IPPROTO_UDP, Packet

        a.send(Packet(a.address, b.address, 4000, 5000, IPPROTO_UDP,
                      b"x" * 500))
        sim.run()
        base = network.one_way_delay_s(a.address, b.address)
        # serialization at 1 Mbps (~4.2 ms) + 100 ms netem + core path.
        assert arrivals[0] == pytest.approx(base + 0.1 + 0.0042, abs=0.01)

    def test_shaper_queue_preserves_order(self):
        sim = Simulator()
        network = Network(sim)
        a = Host("10.0.0.2", city("san jose"))
        b = Host("10.0.1.2", city("dallas"))
        network.attach(a)
        network.attach(b)
        seen = []
        b.bind(5000, lambda p: seen.append(p.meta["n"]))
        network.set_uplink_shaper(a.address, TrafficShaper(rate_bps=2e5))
        from repro.netsim.packet import IPPROTO_UDP, Packet

        for n in range(10):
            a.send(Packet(a.address, b.address, 4000, 5000, IPPROTO_UDP,
                          b"x" * 200, meta={"n": n}))
        sim.run()
        assert seen == sorted(seen)


class TestExperimentFormatting:
    def test_rate_adaptation_table_columns(self):
        from repro.experiments import rate_adaptation

        result = rate_adaptation.run(limits_kbps=(1000.0, 500.0),
                                     duration_s=4.0)
        table = result.format_table()
        assert "offered_mbps" in table
        assert table.count("\n") == 2

    def test_fig6_tables_render(self):
        from repro.experiments import fig6

        rendering = fig6.run_rendering(duration_s=5.0, repeats=1)
        assert "users" in rendering.format_table()
        network = fig6.run_network(duration_s=4.0, repeats=1)
        assert "downlink" in network.format_table()

    def test_layered_table_shows_missing_layer(self):
        from repro.experiments import ablations

        result = ablations.run_layered_codec(
            limits_kbps=(100.0,), duration_s=2.0
        )
        assert "-" in result.format_table()

    def test_fec_table_shows_overhead(self):
        from repro.experiments import ablations

        result = ablations.run_fec_resilience(
            loss_rates=(0.02,), duration_s=2.0
        )
        assert "overhead 25%" in result.format_table()

    def test_framerate_table(self):
        from repro.experiments import framerate

        result = framerate.run(duration_s=3.0, include_over_cap=False)
        table = result.format_table()
        assert "effective_fps" in table
        assert not result.cap_is_justified()  # no 6-user row measured

    def test_qoe_table(self):
        from repro.experiments import qoe_study

        table = qoe_study.format_table(qoe_study.run())
        assert "one-way" in table


class TestGeoEdgeCases:
    def test_geodb_register_servers_iterable(self):
        from repro.geo.geolocate import GeoDatabase
        from repro.geo.servers import ALL_FLEETS

        db = GeoDatabase()
        db.register_servers(ALL_FLEETS["Zoom"].servers)
        for server in ALL_FLEETS["Zoom"].servers:
            assert db.lookup(server.address) is not None

    def test_traceroute_format_marks_final_hop(self):
        from repro.geo.traceroute import TcpTraceroute

        tracer = TcpTraceroute(drop_prob=0.0)
        hops = tracer.run(city("dallas"), city("chicago"), seed=0)
        output = tracer.format_output(hops)
        assert "dst-access-2" in output

    def test_link_utilization_grows_with_traffic(self):
        from repro.netsim.link import Link
        from repro.netsim.packet import IPPROTO_UDP, Packet

        sim = Simulator()
        link = Link(rate_bps=8e6)
        for _ in range(5):
            link.transmit(sim, Packet("a", "b", 1, 2, IPPROTO_UDP,
                                      b"x" * 972), lambda p: None)
        sim.run()
        assert link.utilization(sim.now) == pytest.approx(1.0, abs=0.05)


class TestCliRateAndReportPaths:
    def test_rate_cli_runs_quickly(self, capsys):
        from repro.cli import main

        assert main(["rate", "--duration", "3"]) == 0
        out = capsys.readouterr().out
        assert "cutoff" in out

    def test_report_writes_file(self, tmp_path, capsys):
        from repro.cli import main

        out_file = tmp_path / "r.md"
        assert main(["report", "--quick", "--output", str(out_file)]) == 0
        text = out_file.read_text()
        assert "# Reproduction report" in text
        assert "Table 1" in text
        assert "Ablations" in text
