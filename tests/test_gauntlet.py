"""The fleet-scale fault gauntlet: engines, kernels, campaign, CLI.

Covers the acceptance criteria of the gauntlet PR:

- a cohort of one running the ``standard`` scenario writes a CSV that is
  byte-identical to the scalar resilience path (the ``cmp`` criterion);
- deferred (grouped) cohort arming is bit-identical to eager per-lane
  arming, while arming one cohort event per distinct domain event
  instead of lanes x events;
- the server-side defenses (failover re-assignment, QoE-aware load
  shedding, SFU admission control) keep their invariants;
- the campaign sweep is deterministic, cached, parallel and resumable
  byte for byte, and the CLI subcommand drives it end to end.
"""

import numpy as np
import pytest

from repro.experiments import gauntlet
from repro.experiments.gauntlet import (
    GauntletResult,
    evaluate_fleet_cell,
    lane_rows_to_csv,
    lane_seed,
    run_cohort,
    scalar_lane_row,
)
from repro.faults.schedule import derive_seed
from repro.geo.servers import failover_assignment, shed_overload

# Small-but-real fleet settings: coarse lattice, short campaign.
FAST = dict(seed=0, duration_s=60.0, tick_s=1.0, k=4, regions=8,
            session_size=2, site_step_deg=12.0)
SWEEP = dict(seed=0, duration_s=60.0, tick_s=1.0, k=4, regions=8,
             session_size=2, site_step_deg=12.0)
POLICIES = ["initiator-nearest", "load-aware"]


class TestSeeds:
    def test_lane_zero_keeps_base_seed(self):
        assert lane_seed(7, 0) == 7

    def test_other_lanes_derive_independent_streams(self):
        assert lane_seed(7, 1) == derive_seed(7, "lane", 1)
        assert lane_seed(7, 1) != lane_seed(7, 2)

    def test_world_seed_is_policy_free(self):
        """Every policy of one row faces the identical incident."""
        a = evaluate_fleet_cell("mixed", "initiator-nearest", 20, **FAST)
        b = evaluate_fleet_cell("mixed", "load-aware", 20, **FAST)
        assert a["events"] == b["events"]


class TestFailoverAssignment:
    RTT = np.array([[10.0, 50.0, 90.0],
                    [80.0, 20.0, 60.0],
                    [70.0, 40.0, 30.0]])

    def test_all_up_is_identity(self):
        base = np.array([0, 1, 2])
        moved, displaced = failover_assignment(
            self.RTT, base, np.array([True, True, True]))
        assert moved.tolist() == [0, 1, 2]
        assert not displaced.any()

    def test_down_server_never_assigned(self):
        base = np.array([0, 1, 2])
        up = np.array([True, False, True])
        moved, displaced = failover_assignment(self.RTT, base, up)
        assert displaced.tolist() == [False, True, False]
        # user 1 fails over to its next-best *up* server (60 < 80)
        assert moved.tolist() == [0, 2, 2]

    def test_shed_users_stay_shed(self):
        base = np.array([0, -1, 2])
        moved, displaced = failover_assignment(
            self.RTT, base, np.array([False, True, True]))
        assert moved[1] == -1
        assert moved[0] == 1  # displaced user 0 -> nearest up server

    def test_total_outage_sheds_everyone(self):
        base = np.array([0, 1, 2])
        moved, displaced = failover_assignment(
            self.RTT, base, np.zeros(3, dtype=bool))
        assert moved.tolist() == [-1, -1, -1]
        assert displaced.all()


class TestShedOverload:
    def test_respects_capacity(self):
        rtt = np.array([[10.0, 40.0], [12.0, 42.0],
                        [14.0, 44.0], [16.0, 46.0]])
        base = np.zeros(4, dtype=np.int64)
        up = np.array([True, True])
        moved, shed, moves = shed_overload(rtt, base, up, capacity=2.0)
        occupancy = np.bincount(moved[moved >= 0], minlength=2)
        assert (occupancy <= 2).all()
        assert not shed.any()  # server 1 had headroom: moved, not shed
        assert moves == 2

    def test_sheds_when_no_alternative_fits(self):
        # One-way delays 75/125/175 ms straddle the 100 ms QoE knee, so
        # shedding the farthest users costs the least delay factor.
        rtt = np.array([[150.0], [250.0], [350.0]])
        base = np.zeros(3, dtype=np.int64)
        moved, shed, moves = shed_overload(
            rtt, base, np.array([True]), capacity=1.0)
        assert (moved >= 0).sum() == 1
        assert shed.sum() == 2
        assert moves == 0
        assert moved[0] == 0 and shed.tolist() == [False, True, True]

    def test_down_server_drains_completely(self):
        rtt = np.array([[10.0, 40.0], [12.0, 42.0]])
        base = np.zeros(2, dtype=np.int64)
        up = np.array([False, True])
        moved, shed, _ = shed_overload(rtt, base, up, capacity=10.0)
        assert (moved == 1).all()
        assert not shed.any()

    def test_deterministic(self):
        rng = np.random.default_rng(3)
        rtt = rng.uniform(5.0, 95.0, size=(40, 3))
        base = rng.integers(0, 3, size=40)
        up = np.array([True, True, False])
        a = shed_overload(rtt, base, up, capacity=12.0)
        b = shed_overload(rtt, base, up, capacity=12.0)
        assert (a[0] == b[0]).all() and (a[1] == b[1]).all()
        assert a[2] == b[2]


class TestAdmissionControl:
    def test_generous_limit_is_bit_identical_to_default(self):
        from repro.vca.cohort import sfu_cohort_downlink

        plain = sfu_cohort_downlink(3, 6.0, seed=0, observers=[0])
        limited = sfu_cohort_downlink(3, 6.0, seed=0, observers=[0],
                                      admission_limit=3)
        assert limited == plain
        assert limited.shed_users == ()

    def test_sheds_farthest_users(self):
        from repro.vca.cohort import sfu_cohort_downlink

        full = sfu_cohort_downlink(4, 6.0, seed=0, observers=[0, 1, 2, 3])
        cut = sfu_cohort_downlink(4, 6.0, seed=0, observers=[0, 1, 2, 3],
                                  admission_limit=3)
        assert len(cut.shed_users) == 1
        victim = cut.shed_users[0]
        # a shed observer receives nothing
        assert cut.observer_windows_mbps[victim] == []
        assert cut.observer_late_fraction[victim] == 0.0
        # admitted users still hear from each other
        kept = [i for i in range(4) if i != victim]
        for index in kept:
            assert len(cut.observer_windows_mbps[index]) > 0
        # the full cohort saw traffic on every downlink
        assert all(len(full.observer_windows_mbps[i]) > 0
                   for i in range(4))

    def test_tiny_limit_rejected(self):
        from repro.vca.cohort import sfu_cohort_downlink

        with pytest.raises(ValueError, match="at least two"):
            sfu_cohort_downlink(3, 4.0, seed=0, admission_limit=1)


class TestEvaluateFleetCell:
    def test_deterministic(self):
        a = evaluate_fleet_cell("mixed", "load-aware", 20, **FAST)
        b = evaluate_fleet_cell("mixed", "load-aware", 20, **FAST)
        assert a == b

    def test_fault_free_twin_of_itself(self):
        record = evaluate_fleet_cell("none", "load-aware", 20, **FAST)
        assert record["events"] == 0
        assert record["peak_degraded_fraction"] == 0.0
        assert record["qoe_delta"] == 0.0
        assert record["recovered_fraction"] == 1.0
        assert record["ttr_max_s"] == 0.0

    def test_mixed_incident_degrades_and_recovers(self):
        record = evaluate_fleet_cell("mixed", "load-aware", 40, **FAST)
        assert record["events"] > 0
        assert record["qoe_delta"] < 0.0
        assert record["ever_degraded_fraction"] > 0.0
        assert record["ttr_max_s"] >= record["ttr_p95_s"] >= \
            record["ttr_p50_s"] >= 0.0
        assert 0.0 <= record["recovered_fraction"] <= 1.0

    def test_json_safe_record(self):
        import json

        record = evaluate_fleet_cell("region-outage", "initiator-nearest",
                                     20, **FAST)
        assert json.loads(json.dumps(record)) == record

    def test_validation(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            evaluate_fleet_cell("meteor-strike", "load-aware", 20, **FAST)
        with pytest.raises(ValueError, match="at least one session"):
            evaluate_fleet_cell("mixed", "load-aware", 0, **FAST)
        with pytest.raises(ValueError, match="positive"):
            evaluate_fleet_cell("mixed", "load-aware", 20, seed=0,
                                tick_s=0.0)

    def test_increments_obs_counters(self):
        from repro.obs import metrics as obs_metrics

        before = obs_metrics.counter("gauntlet.cells").value
        record = evaluate_fleet_cell("region-outage", "load-aware", 20,
                                     **FAST)
        assert obs_metrics.counter("gauntlet.cells").value == before + 1
        assert record["events"] >= 0


class TestRunSweep:
    def test_sweep_covers_the_grid(self):
        result = gauntlet.run(scenarios=["region-outage", "none"],
                              policies=POLICIES, fleet_sizes=[20],
                              **SWEEP)
        assert len(result.records) == 4
        assert result.scenarios() == ["region-outage", "none"]
        record = result.record("none", "load-aware", 20)
        assert record["qoe_delta"] == 0.0

    def test_worst_minimizes_qoe_delta(self):
        result = gauntlet.run(scenarios=["mixed", "none"],
                              policies=["load-aware"], fleet_sizes=[20],
                              **SWEEP)
        worst = result.worst()
        assert worst["qoe_delta"] == min(r["qoe_delta"]
                                         for r in result.records)
        assert worst["scenario"] == "mixed"

    def test_unknown_scenario_fails_fast(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            gauntlet.run(scenarios=["nope"], policies=POLICIES,
                         fleet_sizes=[20], **SWEEP)

    def test_unknown_policy_fails_fast(self):
        with pytest.raises(KeyError, match="unknown policy"):
            gauntlet.run(scenarios=["none"], policies=["warp-drive"],
                         fleet_sizes=[20], **SWEEP)

    def test_bad_fleet_sizes(self):
        with pytest.raises(ValueError, match="fleet_sizes"):
            gauntlet.run(scenarios=["none"], policies=POLICIES,
                         fleet_sizes=[0], **SWEEP)

    def test_cache_round_trip_identical(self, tmp_path):
        from repro.core.cache import ResultCache

        cache = ResultCache(tmp_path)
        cold = gauntlet.run(scenarios=["region-outage"], policies=POLICIES,
                            fleet_sizes=[20], cache=cache, **SWEEP)
        warm = gauntlet.run(scenarios=["region-outage"], policies=POLICIES,
                            fleet_sizes=[20], cache=cache, **SWEEP)
        assert cold.records == warm.records

    def test_resume_from_journal_byte_identical(self, tmp_path):
        from repro.core.journal import RunJournal, RunManifest

        journal_path = tmp_path / "gauntlet.journal"
        with RunJournal(journal_path) as journal:
            full = gauntlet.run(scenarios=["region-outage"],
                                policies=POLICIES, fleet_sizes=[20],
                                journal=journal, **SWEEP)
        manifest = RunManifest()
        with RunJournal(journal_path) as journal:
            resumed = gauntlet.run(scenarios=["region-outage"],
                                   policies=POLICIES, fleet_sizes=[20],
                                   journal=journal, resume=True,
                                   manifest=manifest, **SWEEP)
        assert resumed.records == full.records
        assert all(cell.status == "resumed" for cell in manifest.cells)
        a, b = tmp_path / "full.csv", tmp_path / "resumed.csv"
        full.to_csv(a)
        resumed.to_csv(b)
        assert a.read_bytes() == b.read_bytes()

    def test_parallel_matches_serial(self, tmp_path):
        serial = gauntlet.run(scenarios=["region-outage"],
                              policies=POLICIES, fleet_sizes=[20],
                              jobs=1, **SWEEP)
        pooled = gauntlet.run(scenarios=["region-outage"],
                              policies=POLICIES, fleet_sizes=[20],
                              jobs=2, **SWEEP)
        assert serial.records == pooled.records

    def test_format_table_and_csv(self, tmp_path):
        result = gauntlet.run(scenarios=["none"], policies=POLICIES,
                              fleet_sizes=[20], **SWEEP)
        table = result.format_table()
        assert "load-aware" in table and "qoe_delta" in table
        path = tmp_path / "cells.csv"
        result.to_csv(path)
        lines = path.read_text().splitlines()
        assert lines[0] == ",".join(GauntletResult.FIELDS)
        assert len(lines) == 1 + len(result.records)

    def test_missing_record_raises(self):
        with pytest.raises(KeyError, match="no record"):
            GauntletResult(records=[]).record("mixed", "load-aware", 20)


class TestCohortEngine:
    def test_cohort_of_one_matches_scalar_csv(self, tmp_path):
        """The acceptance ``cmp``: batch engine == scalar path, in bytes."""
        rows = run_cohort("FaceTime", 1, duration_s=30.0, seed=0,
                          scenario="standard")
        reference = [scalar_lane_row("FaceTime", duration_s=30.0, seed=0)]
        cohort_csv = tmp_path / "cohort.csv"
        scalar_csv = tmp_path / "scalar.csv"
        lane_rows_to_csv(rows, cohort_csv)
        lane_rows_to_csv(reference, scalar_csv)
        assert cohort_csv.read_bytes() == scalar_csv.read_bytes()

    def test_deferred_grouping_matches_eager(self):
        """Grouped cohort arming changes the engine, never the results.

        Seed 0 ``mixed`` over 15 s samples two region outages covering
        two lanes each: four (lane, event) pairs collapse into two
        cohort events, and every per-lane observable stays identical to
        eager per-event arming.
        """
        from repro.core.testbed import default_two_user_testbed
        from repro.faults.cohort import CohortInjector
        from repro.faults.domains import build_plan, lane_schedules
        from repro.faults.resilient import ResilienceConfig
        from repro.vca.cohort import CohortRunner
        from repro.vca.profiles import PROFILES

        n_lanes, duration_s, seed = 4, 15.0, 0
        lane_regions = np.arange(n_lanes) % 2
        plan = build_plan("mixed", seed, duration_s, lane_regions,
                         n_regions=2)
        assert len(plan.events) == 2  # the fixture this test relies on

        def run_once(deferred):
            schedules = lane_schedules(plan, gauntlet.VICTIM)
            runner = CohortRunner()
            injector = CohortInjector.of(runner.batch, deferred=deferred)
            profile = PROFILES["FaceTime"]
            for lane in range(n_lanes):
                testbed = default_two_user_testbed()
                runner.add(
                    lambda sim, lane=lane: testbed.session(
                        profile, seed=lane_seed(seed, lane),
                        faults=schedules[lane],
                        resilience=ResilienceConfig(), sim=sim,
                    )
                )
            injector.seal()
            results = runner.run(duration_s)
            reports = [
                r.resilience.report(gauntlet.OBSERVER, gauntlet.VICTIM)
                for r in results
            ]
            return injector, reports

        eager_injector, eager = run_once(deferred=False)
        grouped_injector, grouped = run_once(deferred=True)
        assert grouped == eager
        # Eager arms lanes x events; deferred arms one event per group.
        assert eager_injector.lane_events_covered == 4
        assert eager_injector.cohort_events_armed == 4
        assert grouped_injector.lane_events_covered == 4
        assert grouped_injector.cohort_events_armed == 2

    def test_no_faults_scenario_stays_healthy(self):
        rows = run_cohort("FaceTime", 1, duration_s=10.0, seed=0,
                          scenario="none")
        assert rows[0]["recovered"] is True
        assert rows[0]["failovers"] == 0
        assert rows[0]["total_stall_s"] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one lane"):
            run_cohort("FaceTime", 0)
        with pytest.raises(KeyError):
            run_cohort("FaceTime", 1, scenario="meteor-strike")


class TestCli:
    def test_gauntlet_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        csv_path = tmp_path / "out.csv"
        code = main([
            "gauntlet", "--scenarios", "region-outage,none",
            "--policies", "initiator-nearest,load-aware",
            "--fleet-sizes", "20", "--gauntlet-duration", "60",
            "--k", "4", "--regions", "8", "--session-size", "2",
            "--site-step", "12", "--no-cache", "--csv", str(csv_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "region-outage" in out
        assert "worst cell:" in out
        assert csv_path.exists()

    def test_resume_requires_journal(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="--resume needs --journal"):
            main(["gauntlet", "--resume", "--no-cache"])

    def test_comma_and_space_scenario_lists_agree(self):
        from repro.cli import build_parser

        by_comma = build_parser().parse_args(
            ["gauntlet", "--scenarios", "region-outage,mixed"])
        by_space = build_parser().parse_args(
            ["gauntlet", "--scenarios", "region-outage", "mixed"])
        split = [name for entry in by_comma.scenarios
                 for name in entry.split(",") if name]
        assert split == by_space.scenarios
