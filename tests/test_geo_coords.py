"""Geometry of the geography substrate."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geo.coords import EARTH_RADIUS_KM, GeoPoint, haversine_km

NYC = GeoPoint("New York", 40.7128, -74.0060)
LA = GeoPoint("Los Angeles", 34.0522, -118.2437)
LONDON = GeoPoint("London", 51.5074, -0.1278)


class TestGeoPoint:
    def test_rejects_bad_latitude(self):
        with pytest.raises(ValueError):
            GeoPoint("x", 91.0, 0.0)

    def test_rejects_bad_longitude(self):
        with pytest.raises(ValueError):
            GeoPoint("x", 0.0, 181.0)

    def test_distance_method_matches_function(self):
        assert NYC.distance_km(LA) == haversine_km(NYC, LA)


class TestHaversine:
    def test_nyc_la_distance(self):
        # Great-circle NYC-LA is ~3,936 km.
        assert haversine_km(NYC, LA) == pytest.approx(3936, rel=0.02)

    def test_nyc_london_distance(self):
        # ~5,570 km.
        assert haversine_km(NYC, LONDON) == pytest.approx(5570, rel=0.02)

    def test_zero_distance(self):
        assert haversine_km(NYC, NYC) == 0.0

    def test_antipodal_bound(self):
        a = GeoPoint("a", 0.0, 0.0)
        b = GeoPoint("b", 0.0, 180.0)
        assert haversine_km(a, b) == pytest.approx(math.pi * EARTH_RADIUS_KM, rel=1e-6)


geo_points = st.builds(
    GeoPoint,
    st.just("p"),
    st.floats(min_value=-90, max_value=90, allow_nan=False),
    st.floats(min_value=-180, max_value=180, allow_nan=False),
)


class TestHaversineProperties:
    @given(geo_points, geo_points)
    def test_symmetry(self, a, b):
        assert haversine_km(a, b) == pytest.approx(haversine_km(b, a), abs=1e-9)

    @given(geo_points, geo_points)
    def test_non_negative_and_bounded(self, a, b):
        d = haversine_km(a, b)
        assert 0.0 <= d <= math.pi * EARTH_RADIUS_KM + 1e-6

    @given(geo_points, geo_points, geo_points)
    def test_triangle_inequality(self, a, b, c):
        assert haversine_km(a, c) <= (
            haversine_km(a, b) + haversine_km(b, c) + 1e-6
        )

    @given(geo_points)
    def test_identity(self, a):
        assert haversine_km(a, a) == 0.0
