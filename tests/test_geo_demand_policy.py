"""Planet-scale demand model, selection-policy registry, and the
bit-exactness contract of the vectorized RTT kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.coords import GeoPoint, haversine_km, haversine_km_arrays
from repro.geo.demand import (
    DemandModel,
    FlashCrowd,
    TROUGH_FLOOR,
    WORLD_REGIONS,
    diurnal_load,
    regions_by_name,
    seeded_flash_crowds,
)
from repro.geo.latency import PathModel, rtt_matrix_ms
from repro.geo.placement import (
    global_candidate_sites,
    mean_rtt_ms,
    optimize_placement,
)
from repro.geo.policy import (
    AssignmentContext,
    ServerSelectionPolicy,
    get_policy,
    policy_names,
    register_policy,
    session_worst_one_way_ms,
)
from repro.geo.regions import city, region_of
from repro.geo.servers import build_fleet


# ---------------------------------------------------------------------------
# demand
# ---------------------------------------------------------------------------

class TestDemandModel:
    def test_catalog_is_global(self):
        lons = [r.location.lon for r in WORLD_REGIONS]
        assert min(lons) < -100 and max(lons) > 100  # both hemispheres
        assert len(WORLD_REGIONS) >= 30

    def test_diurnal_peaks_in_the_evening(self):
        hours = np.arange(0.0, 24.0, 0.25)
        load = diurnal_load(hours, 0.0)
        assert hours[int(np.argmax(load))] == pytest.approx(20.0)
        assert load.min() >= TROUGH_FLOOR

    def test_diurnal_respects_utc_offset(self):
        # 11:00 UTC is 20:00 in Tokyo (+9): Tokyo peaks, London troughs.
        assert diurnal_load(11.0, 9.0) > diurnal_load(11.0, 0.0)

    def test_region_weights_follow_local_evening(self):
        model = DemandModel.default()
        names = [r.name for r in model.regions]
        weights_asia_evening = model.region_weights(11.0)
        weights_us_evening = model.region_weights(28.0 % 24.0)
        tokyo = names.index("Tokyo")
        assert weights_asia_evening[tokyo] > weights_us_evening[tokyo]
        for weights in (weights_asia_evening, weights_us_evening):
            assert weights.sum() == pytest.approx(1.0)
            assert (weights > 0).all()

    def test_flash_crowd_boosts_its_region(self):
        quiet = DemandModel.default()
        crowd = FlashCrowd(region=quiet.regions[5].name, start_utc_h=10.0,
                           duration_h=2.0, multiplier=6.0)
        loud = DemandModel(regions=quiet.regions, flash_crowds=(crowd,))
        assert (loud.region_weights(11.0)[5]
                > quiet.region_weights(11.0)[5])
        # outside the burst window the models agree
        np.testing.assert_allclose(loud.region_weights(15.0),
                                   quiet.region_weights(15.0))

    def test_flash_crowd_wraps_midnight(self):
        crowd = FlashCrowd(region="Tokyo", start_utc_h=23.0,
                           duration_h=2.0, multiplier=3.0)
        assert crowd.active(23.5)
        assert crowd.active(0.5)
        assert not crowd.active(2.0)

    def test_flash_crowd_unknown_region_rejected(self):
        with pytest.raises(ValueError, match="unknown region"):
            DemandModel(flash_crowds=(
                FlashCrowd("Atlantis", 0.0, 1.0, 2.0),))

    def test_seeded_flash_crowds_deterministic(self):
        assert seeded_flash_crowds(3) == seeded_flash_crowds(3)
        assert seeded_flash_crowds(3) != seeded_flash_crowds(4)

    def test_sample_users_deterministic(self):
        model = DemandModel.default(flash_seed=0)
        a = model.sample_users(5000, 11.0, seed=42)
        b = model.sample_users(5000, 11.0, seed=42)
        np.testing.assert_array_equal(a.lat, b.lat)
        np.testing.assert_array_equal(a.lon, b.lon)
        np.testing.assert_array_equal(a.region_index, b.region_index)
        assert len(a) == 5000

    def test_sample_users_valid_coordinates(self):
        sample = DemandModel.default().sample_users(20000, 3.0, seed=1)
        assert (np.abs(sample.lat) <= 90.0).all()
        assert (sample.lon >= -180.0).all() and (sample.lon < 180.0).all()

    def test_sample_users_track_demand_weights(self):
        model = DemandModel.default(max_regions=8)
        weights = model.region_weights(20.0)
        counts = model.sample_users(50000, 20.0, seed=0).region_counts(8)
        np.testing.assert_allclose(counts / counts.sum(), weights,
                                   atol=0.01)

    def test_default_truncates_by_population(self):
        model = DemandModel.default(max_regions=5)
        pops = [r.population_m for r in model.regions]
        assert pops == sorted(pops, reverse=True)
        assert len(model.regions) == 5

    def test_demand_points_match_regions(self):
        model = DemandModel.default(max_regions=6)
        points, weights = model.demand_points([2.0, 14.0])
        assert len(points) == 6
        assert weights.sum() == pytest.approx(1.0)

    def test_regions_by_name_lookup(self):
        assert regions_by_name()["Tokyo"].utc_offset_h == 9.0


# ---------------------------------------------------------------------------
# region catalog error paths
# ---------------------------------------------------------------------------

class TestRegionErrorPaths:
    def test_city_unknown_prefix(self):
        with pytest.raises(KeyError, match="no catalog city"):
            city("gotham")

    def test_city_known_prefix(self):
        assert city("dallas").name == "Dallas, TX"

    def test_region_of_uncataloged_point(self):
        with pytest.raises(KeyError, match="not in the catalog"):
            region_of(GeoPoint("Nowhere", 0.0, 0.0))


# ---------------------------------------------------------------------------
# bit-exactness of the vectorized kernels
# ---------------------------------------------------------------------------

coordinates = st.tuples(
    st.floats(min_value=-89.9, max_value=89.9),
    st.floats(min_value=-180.0, max_value=180.0),
)


class TestKernelBitExactness:
    @given(a=coordinates, b=coordinates)
    @settings(max_examples=200, deadline=None)
    def test_haversine_matrix_matches_scalar(self, a, b):
        pa = GeoPoint("a", *a)
        pb = GeoPoint("b", *b)
        scalar = haversine_km(pa, pb)
        matrix = haversine_km_arrays(
            np.array([pa.lat]), np.array([pa.lon]),
            np.array([pb.lat]), np.array([pb.lon]),
        )
        assert matrix[0] == scalar  # bit-exact, not approx

    @given(a=coordinates, b=coordinates)
    @settings(max_examples=200, deadline=None)
    def test_rtt_matrix_matches_scalar_base_rtt(self, a, b):
        model = PathModel()
        pa = GeoPoint("a", *a)
        pb = GeoPoint("b", *b)
        matrix = rtt_matrix_ms([pa], [pb], model)
        assert matrix[0, 0] == model.base_rtt_ms(pa, pb)

    def test_full_matrix_bit_exact_over_a_grid(self):
        model = PathModel()
        rng = np.random.default_rng(0)
        points = [
            GeoPoint(f"p{i}", float(lat), float(lon))
            for i, (lat, lon) in enumerate(
                zip(rng.uniform(-89, 89, 40), rng.uniform(-180, 180, 40)))
        ]
        matrix = rtt_matrix_ms(points, points, model)
        for i, a in enumerate(points):
            for j, b in enumerate(points):
                assert matrix[i, j] == model.base_rtt_ms(a, b)

    def test_one_way_arrays_match_scalar(self):
        model = PathModel()
        pa = GeoPoint("a", 37.3, -121.9)
        pb = GeoPoint("b", 40.7, -74.0)
        vec = model.one_way_ms_arrays(
            np.array([pa.lat]), np.array([pa.lon]),
            np.array([pb.lat]), np.array([pb.lon]))
        assert vec[0] == model.one_way_ms(pa, pb)


# ---------------------------------------------------------------------------
# placement optimizer
# ---------------------------------------------------------------------------

class TestOptimizePlacement:
    def test_deterministic(self):
        a = optimize_placement(3, exchange_rounds=2)
        b = optimize_placement(3, exchange_rounds=2)
        assert [s.name for s in a.servers] == [s.name for s in b.servers]
        assert a.mean_rtt_ms == b.mean_rtt_ms

    def test_exchange_rounds_never_hurt(self):
        greedy = optimize_placement(4, exchange_rounds=0)
        refined = optimize_placement(4, exchange_rounds=3)
        assert refined.mean_rtt_ms <= greedy.mean_rtt_ms + 1e-9
        assert refined.rounds >= greedy.rounds

    def test_converges_early_when_locally_optimal(self):
        # with k=1 over the 8 vantage cities a single exchange pass
        # suffices; extra budget must not keep spinning
        a = optimize_placement(1, exchange_rounds=2)
        b = optimize_placement(1, exchange_rounds=50)
        assert a.mean_rtt_ms == b.mean_rtt_ms
        assert b.rounds < 1 + 50  # early exit, not the full budget

    def test_more_servers_never_worse(self):
        scores = [optimize_placement(k).mean_rtt_ms for k in (1, 2, 4)]
        assert scores == sorted(scores, reverse=True)

    def test_weighted_demand_pulls_placement(self):
        clients = [GeoPoint("sf", 37.77, -122.42),
                   GeoPoint("nyc", 40.71, -74.01)]
        west = optimize_placement(1, clients, weights=[0.99, 0.01])
        east = optimize_placement(1, clients, weights=[0.01, 0.99])
        assert west.servers[0].lon < east.servers[0].lon

    def test_global_sites_cover_the_planet(self):
        sites = global_candidate_sites(8.0)
        lons = [s.lon for s in sites]
        lats = [s.lat for s in sites]
        assert min(lons) == -180.0 and max(lons) > 160.0
        assert min(lats) == -60.0 and max(lats) >= 68.0
        with pytest.raises(ValueError):
            global_candidate_sites(0.0)

    def test_input_validation(self):
        with pytest.raises(ValueError, match="k must be"):
            optimize_placement(0)
        with pytest.raises(ValueError, match="candidate sites"):
            optimize_placement(3, sites=[GeoPoint("only", 0.0, 0.0)])
        with pytest.raises(ValueError, match="weights"):
            mean_rtt_ms([GeoPoint("s", 0, 0)],
                        [GeoPoint("c", 1, 1)], weights=[0.5, 0.5])


# ---------------------------------------------------------------------------
# selection policies
# ---------------------------------------------------------------------------

def _toy_context():
    """3 users, 2 servers: user0 near server0, users 1-2 near server1."""
    rtt = np.array([[10.0, 80.0],
                    [90.0, 12.0],
                    [85.0, 11.0]])
    sessions = np.array([[0, 1, 2]])  # user 0 initiates
    backbone = np.array([[0.0, 40.0], [40.0, 0.0]])
    return AssignmentContext(rtt, sessions, backbone)


class TestPolicies:
    def test_registry_has_the_four_policies(self):
        assert set(policy_names()) >= {
            "initiator-nearest", "client-nearest",
            "latency-budget", "load-aware"}

    def test_get_policy_unknown_name(self):
        with pytest.raises(KeyError, match="unknown policy"):
            get_policy("teleport-everyone")

    def test_register_rejects_duplicates(self):
        with pytest.raises(ValueError, match="already registered"):
            register_policy(get_policy("client-nearest"))

    def test_register_rejects_anonymous(self):
        class Nameless(ServerSelectionPolicy):
            def assign(self, ctx):
                raise NotImplementedError

        with pytest.raises(ValueError, match="non-empty name"):
            register_policy(Nameless())

    def test_initiator_nearest_follows_the_initiator(self):
        ctx = _toy_context()
        assignment = get_policy("initiator-nearest").assign(ctx)
        np.testing.assert_array_equal(assignment, [[0, 0, 0]])

    def test_client_nearest_attaches_each_client_locally(self):
        ctx = _toy_context()
        assignment = get_policy("client-nearest").assign(ctx)
        np.testing.assert_array_equal(assignment, [[0, 1, 1]])

    def test_latency_budget_switches_only_over_budget(self):
        ctx = _toy_context()
        # worst RTT via server0 is 90 ms: under a 100 ms budget stay put,
        # under an 80 ms budget move to the min-worst server (server1).
        from repro.geo.policy import LatencyBudget
        stay = LatencyBudget(budget_ms=100.0).assign(ctx)
        move = LatencyBudget(budget_ms=80.0).assign(ctx)
        np.testing.assert_array_equal(stay, [[0, 0, 0]])
        np.testing.assert_array_equal(move, [[1, 1, 1]])

    def test_load_aware_sheds_overload(self):
        from repro.geo.policy import LoadAware
        # 8 users all nearest server0, capacity_factor 1 over 2 servers
        # caps server0 at 4: exactly 4 must spill to server1.
        rtt = np.tile(np.array([[10.0, 30.0]]), (8, 1))
        sessions = np.arange(8).reshape(4, 2)
        ctx = AssignmentContext(rtt, sessions, np.zeros((2, 2)))
        assignment = LoadAware(capacity_factor=1.0).assign(ctx)
        counts = np.bincount(assignment.ravel(), minlength=2)
        np.testing.assert_array_equal(counts, [4, 4])

    def test_session_worst_one_way_shared_relay(self):
        ctx = _toy_context()
        assignment = np.array([[0, 0, 0]])
        worst = session_worst_one_way_ms(ctx, assignment)
        # worst pair is 1<->2 via server0: (90 + 85) / 2
        assert worst[0] == pytest.approx((90.0 + 85.0) / 2.0)

    def test_session_worst_one_way_backbone_leg(self):
        ctx = _toy_context()
        assignment = np.array([[0, 1, 1]])
        worst = session_worst_one_way_ms(ctx, assignment,
                                         backbone_speedup=2.0)
        # pairs: 0-1 = 5 + 40/2/2 + 6 = 21, 0-2 = 5+10+5.5, 1-2 = 11.5
        assert worst[0] == pytest.approx(10.0 / 2 + 40.0 / 2.0 / 2.0
                                         + 12.0 / 2)

    def test_session_worst_validation(self):
        ctx = _toy_context()
        with pytest.raises(ValueError, match="backbone_speedup"):
            session_worst_one_way_ms(ctx, np.zeros((1, 3), dtype=int),
                                     backbone_speedup=0.5)
        with pytest.raises(ValueError, match="shape"):
            session_worst_one_way_ms(ctx, np.zeros((2, 3), dtype=int))

    def test_context_shape_validation(self):
        with pytest.raises(ValueError, match="server_backbone_ms"):
            AssignmentContext(np.zeros((4, 3)), np.zeros((1, 2), dtype=int),
                              np.zeros((2, 2)))


# ---------------------------------------------------------------------------
# geo-distributed worst pair with duplicate participants
# ---------------------------------------------------------------------------

class TestGeoDistributedDuplicates:
    def test_duplicate_participant_locations(self):
        """Two participants in the same city share one attachment; the
        dict-based attachment map must not lose or double-count them."""
        fleet = build_fleet("Zoom")
        sj = city("san jose")
        dup = [sj, sj, city("new york")]
        worst_dup = fleet.worst_pair_rtt_ms_geo_distributed(dup)
        worst_pair = fleet.worst_pair_rtt_ms_geo_distributed(
            [sj, city("new york")])
        assert worst_dup == pytest.approx(worst_pair)

    def test_all_duplicates_is_access_only(self):
        fleet = build_fleet("Zoom")
        sj = city("san jose")
        worst = fleet.worst_pair_rtt_ms_geo_distributed([sj, sj, sj])
        # same city, same server: only access + local propagation x2
        assert worst == pytest.approx(
            2.0 * fleet.path_model.base_rtt_ms(
                sj, fleet.nearest(sj).location))

    def test_backbone_speedup_validation(self):
        fleet = build_fleet("Zoom")
        with pytest.raises(ValueError, match="backbone_speedup"):
            fleet.worst_pair_rtt_ms_geo_distributed(
                [city("san jose"), city("miami")], backbone_speedup=0.9)
