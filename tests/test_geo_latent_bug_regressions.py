"""Regression tests for latent bugs found in the geo layer.

Each test pins a bug that existed before the planet-scale placement work
and failed against the old code:

1. ``ServerFleet``'s default ``path_model`` was the module-level
   ``DEFAULT_PATH_MODEL`` singleton, so ``seed()``-ing one fleet's jitter
   stream silently reseeded every other fleet (and any other default-model
   user) in the process.
2. ``PathModel`` equality and hashing included the private ``_rng``, so
   two identically-calibrated models stopped comparing equal the moment
   either drew a sample.
3. ``sample_rtt_ms`` documented "truncated at zero" while the code
   clamped at 40% of the base RTT; the floor is now an explicit,
   documented parameter.
4. ``FleetAssessment.efficiency`` could silently exceed 1.0 when the
   observed fleet beat the optimizer's coarse candidate grid; it now
   clamps and records ``grid_limited``.
"""

import numpy as np
import pytest

from repro.geo.coords import GeoPoint
from repro.geo.latency import PathModel
from repro.geo.placement import FleetAssessment, assess_fleet
from repro.geo.servers import ALL_FLEETS, Server, ServerFleet, build_fleet


class TestFleetPathModelIndependence:
    def test_fleets_do_not_share_a_path_model(self):
        """Pre-fix: every default-built fleet held the same PathModel."""
        zoom = build_fleet("Zoom")
        teams = build_fleet("Teams")
        assert zoom.path_model is not teams.path_model

    def test_prebuilt_fleets_do_not_share_a_path_model(self):
        models = [fleet.path_model for fleet in ALL_FLEETS.values()]
        assert len({id(m) for m in models}) == len(models)

    def test_seeding_one_fleet_never_reseeds_another(self):
        """Pre-fix: seed() on one fleet changed every fleet's jitter.

        Draw from fleet B, reseed fleet A, draw from B again: B's stream
        must keep advancing as if A did not exist.
        """
        a = build_fleet("Zoom")
        b = build_fleet("Webex")
        b_ref = build_fleet("Webex")
        sj = GeoPoint("San Jose, CA", 37.3387, -121.8853)
        dc = GeoPoint("Washington, DC", 38.9072, -77.0369)
        b.path_model.seed(7)
        b_ref.path_model.seed(7)

        b.path_model.sample_rtt_ms(sj, dc, n=4)
        b_ref.path_model.sample_rtt_ms(sj, dc, n=4)
        a.path_model.seed(123456)  # must not touch b's stream
        np.testing.assert_array_equal(
            b.path_model.sample_rtt_ms(sj, dc, n=4),
            b_ref.path_model.sample_rtt_ms(sj, dc, n=4),
        )

    def test_explicit_model_is_still_honored(self):
        model = PathModel(jitter_std_ms=0.0)
        fleet = build_fleet("Teams", path_model=model)
        assert fleet.path_model is model


class TestPathModelIdentity:
    def test_equality_ignores_rng_state(self):
        """Pre-fix: drawing a sample made equal models unequal."""
        a = PathModel()
        b = PathModel()
        sj = GeoPoint("San Jose, CA", 37.3387, -121.8853)
        dc = GeoPoint("Washington, DC", 38.9072, -77.0369)
        a.sample_rtt_ms(sj, dc, n=16)  # advance a's stream only
        assert a == b

    def test_hash_ignores_rng_state(self):
        a = PathModel()
        b = PathModel()
        a.seed(99)
        assert hash(a) == hash(b)

    def test_hash_sees_parameter_changes(self):
        assert hash(PathModel()) != hash(PathModel(access_rtt_ms=99.0))

    def test_spawn_gives_independent_stream(self):
        base = PathModel()
        clone = base.spawn(seed=5)
        assert clone == base
        assert clone._rng is not base._rng

    def test_spawn_preserves_jitter_floor(self):
        model = PathModel(jitter_floor_fraction=0.15)
        assert model.spawn(seed=1).jitter_floor_fraction == 0.15


class TestJitterFloor:
    SJ = GeoPoint("San Jose, CA", 37.3387, -121.8853)
    DC = GeoPoint("Washington, DC", 38.9072, -77.0369)

    def test_samples_respect_the_documented_floor(self):
        """The docstring used to promise truncation at zero while the
        code clamped at 0.4 * base; the floor is now explicit."""
        model = PathModel(jitter_std_ms=500.0, jitter_floor_fraction=0.4)
        model.seed(0)
        base = model.base_rtt_ms(self.SJ, self.DC)
        samples = model.sample_rtt_ms(self.SJ, self.DC, n=2000)
        assert samples.min() >= 0.4 * base
        # the huge jitter must actually hit the clamp for this test to bite
        assert np.isclose(samples.min(), 0.4 * base)

    def test_zero_floor_truncates_at_zero(self):
        model = PathModel(jitter_std_ms=500.0, jitter_floor_fraction=0.0)
        model.seed(0)
        samples = model.sample_rtt_ms(self.SJ, self.DC, n=2000)
        assert samples.min() >= 0.0
        assert samples.min() < 1.0  # truncation reached, not just unlikely

    def test_floor_boundary_one_pins_samples_at_base(self):
        model = PathModel(jitter_std_ms=500.0, jitter_floor_fraction=1.0)
        model.seed(0)
        base = model.base_rtt_ms(self.SJ, self.DC)
        samples = model.sample_rtt_ms(self.SJ, self.DC, n=100)
        assert samples.min() >= base

    @pytest.mark.parametrize("bad", [-0.1, 1.1])
    def test_floor_outside_unit_interval_rejected(self, bad):
        with pytest.raises(ValueError, match="jitter_floor_fraction"):
            PathModel(jitter_floor_fraction=bad)


class TestEfficiencyClamp:
    @pytest.mark.parametrize("vca", list(ALL_FLEETS))
    def test_paper_fleet_efficiency_at_most_one(self, vca):
        """Pre-fix: efficiency could silently exceed 1.0."""
        assessment = assess_fleet(build_fleet(vca))
        assert 0.0 < assessment.efficiency <= 1.0

    def test_grid_limited_fleet_is_flagged_and_clamped(self):
        """A fleet sitting exactly on its only client beats every lattice
        candidate; the assessment must clamp and say why."""
        client = GeoPoint("client", 37.3, -121.9)  # off-lattice location
        fleet = ServerFleet("Custom", [
            Server("Custom", "W", client, "10.0.0.1"),
        ])
        assessment = assess_fleet(fleet, clients=[client])
        assert assessment.grid_limited
        assert assessment.efficiency == 1.0
        # the raw numbers still expose the grid gap for anyone who asks
        assert assessment.optimal_mean_rtt_ms > assessment.observed_mean_rtt_ms

    def test_unclamped_assessment_not_grid_limited(self):
        assessment = FleetAssessment("x", observed_mean_rtt_ms=20.0,
                                     optimal_mean_rtt_ms=10.0)
        assert not assessment.grid_limited
        assert assessment.efficiency == pytest.approx(0.5)
