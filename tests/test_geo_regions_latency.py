"""Region catalog and the Table 1 RTT model."""

import numpy as np
import pytest

from repro import calibration
from repro.geo.coords import GeoPoint
from repro.geo.latency import PathModel, rtt_ms
from repro.geo.regions import CITY_CATALOG, Region, all_clients, city, region_of
from repro.geo.regions import test_clients as region_test_clients


class TestRegions:
    def test_catalog_has_paper_vantage_counts(self):
        # Sec. 4.1: two Western, three Middle, three Eastern clients.
        assert len(CITY_CATALOG[Region.WEST]) == 2
        assert len(CITY_CATALOG[Region.MIDDLE]) == 3
        assert len(CITY_CATALOG[Region.EAST]) == 3

    def test_all_clients_is_eight(self):
        assert len(all_clients()) == 8

    def test_city_lookup_case_insensitive(self):
        assert city("DALLAS").name == "Dallas, TX"

    def test_city_lookup_missing(self):
        with pytest.raises(KeyError):
            city("springfield")

    def test_region_of_catalog_city(self):
        assert region_of(city("chicago")) is Region.MIDDLE

    def test_region_from_code(self):
        assert Region.from_code("W") is Region.WEST
        with pytest.raises(ValueError):
            Region.from_code("X")

    def test_test_clients_one_per_region(self):
        clients = region_test_clients()
        assert set(clients) == set(Region)


class TestPathModel:
    def test_zero_distance_rtt_is_access_only(self):
        p = city("dallas")
        assert rtt_ms(p, p) == pytest.approx(calibration.ACCESS_RTT_MS)

    def test_rtt_grows_with_distance(self):
        w, m, e = city("san jose"), city("dallas"), city("washington")
        assert rtt_ms(w, m) < rtt_ms(w, e)

    def test_rtt_is_symmetric(self):
        w, e = city("san jose"), city("washington")
        assert rtt_ms(w, e) == pytest.approx(rtt_ms(e, w))

    def test_coast_to_coast_matches_paper_scale(self):
        # Paper: ~80 ms across the US (Table 1 off-diagonal).
        w, e = city("san jose"), GeoPoint("Ashburn", 39.0438, -77.4874)
        assert 60 < rtt_ms(w, e) < 90

    def test_one_way_is_half_rtt(self):
        model = PathModel()
        w, e = city("san jose"), city("washington")
        assert model.one_way_ms(w, e) == pytest.approx(model.base_rtt_ms(w, e) / 2)

    def test_samples_center_on_base(self):
        model = PathModel()
        model.seed(7)
        w, e = city("san jose"), city("washington")
        samples = model.sample_rtt_ms(w, e, 500)
        assert np.mean(samples) == pytest.approx(
            model.base_rtt_ms(w, e), abs=0.5
        )

    def test_sample_std_under_table1_bound(self):
        model = PathModel()
        model.seed(11)
        samples = model.sample_rtt_ms(city("san jose"), city("washington"), 500)
        assert np.std(samples) < calibration.TABLE1_RTT_STD_BOUND_MS

    def test_samples_never_negative(self):
        model = PathModel()
        model.seed(3)
        p = city("dallas")
        samples = model.sample_rtt_ms(p, p, 200)
        assert (samples > 0).all()

    def test_reseeding_reproduces(self):
        model = PathModel()
        w, e = city("san jose"), city("washington")
        model.seed(5)
        first = model.sample_rtt_ms(w, e, 10)
        model.seed(5)
        second = model.sample_rtt_ms(w, e, 10)
        assert np.array_equal(first, second)
