"""Server fleets, selection policy, geolocation, anycast detection."""

import pytest

from repro import calibration
from repro.geo.coords import GeoPoint
from repro.geo.geolocate import AnycastProbe, GeoDatabase, default_database
from repro.geo.regions import city
from repro.geo.servers import ALL_FLEETS, ServerFleet, build_fleet


class TestFleets:
    def test_server_counts_match_paper(self):
        # Sec. 4.1: FaceTime 4, Zoom 2, Webex 3, Teams 1 US servers.
        for vca, count in calibration.SERVER_COUNTS.items():
            assert len(ALL_FLEETS[vca].servers) == count

    def test_unknown_vca_rejected(self):
        with pytest.raises(KeyError):
            build_fleet("Skype")

    def test_by_label(self):
        assert ALL_FLEETS["FaceTime"].by_label("M2").location.name.startswith(
            "Chicago"
        )
        with pytest.raises(KeyError):
            ALL_FLEETS["Teams"].by_label("E")

    def test_unique_addresses_across_all_fleets(self):
        addresses = [
            s.address for f in ALL_FLEETS.values() for s in f.servers
        ]
        assert len(addresses) == len(set(addresses))

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            ServerFleet("X", [])

    def test_region_from_label(self):
        from repro.geo.regions import Region

        assert ALL_FLEETS["FaceTime"].by_label("M1").region is Region.MIDDLE


class TestSelectionPolicy:
    def test_nearest_to_initiator(self):
        fleet = ALL_FLEETS["FaceTime"]
        server = fleet.select_for_session(city("washington"), [])
        assert server.label == "E"

    def test_other_participants_ignored(self):
        # Sec. 4.1: the server follows the initiator only.
        fleet = ALL_FLEETS["FaceTime"]
        west_heavy = [city("san jose"), city("seattle")]
        server = fleet.select_for_session(city("washington"), west_heavy)
        assert server.label == "E"

    def test_single_server_provider_always_same(self):
        fleet = ALL_FLEETS["Teams"]
        for c in ("san jose", "dallas", "washington"):
            assert fleet.select_for_session(city(c), []).label == "W"

    def test_initiator_rotation_changes_server(self):
        fleet = ALL_FLEETS["Zoom"]
        west = fleet.select_for_session(city("san jose"), [])
        east = fleet.select_for_session(city("washington"), [])
        assert west.label != east.label


class TestPairRtt:
    def test_geo_distribution_helps_coast_to_coast(self):
        fleet = ALL_FLEETS["FaceTime"]
        participants = [city("san jose"), city("washington")]
        single = fleet.worst_pair_rtt_ms(city("washington"), participants)
        distributed = fleet.worst_pair_rtt_ms_geo_distributed(
            participants, backbone_speedup=1.5
        )
        assert distributed < single

    def test_backbone_speedup_validation(self):
        fleet = ALL_FLEETS["FaceTime"]
        with pytest.raises(ValueError):
            fleet.worst_pair_rtt_ms_geo_distributed([city("dallas")], 0.5)

    def test_attachments_pick_nearest(self):
        fleet = ALL_FLEETS["Webex"]
        attach = fleet.geo_distributed_attachments(
            [city("san jose"), city("washington")]
        )
        assert attach[city("san jose")].label == "W"
        assert attach[city("washington")].label == "E"


class TestGeoDatabase:
    def test_lookup_error_is_city_level(self):
        db = default_database()
        server = ALL_FLEETS["FaceTime"].by_label("W")
        located = db.lookup(server.address)
        assert located.distance_km(server.location) < 60

    def test_lookup_is_deterministic(self):
        db = default_database()
        address = ALL_FLEETS["Zoom"].by_label("E").address
        a, b = db.lookup(address), db.lookup(address)
        assert (a.lat, a.lon) == (b.lat, b.lon)

    def test_unknown_address_raises(self):
        with pytest.raises(KeyError):
            GeoDatabase().lookup("203.0.113.9")


class TestAnycastProbe:
    def test_unicast_servers_pass(self):
        probe = AnycastProbe()
        server = ALL_FLEETS["FaceTime"].by_label("M1")
        rtts = probe.probe_server(
            server, [city("san jose"), city("washington")], seed=1
        )
        assert not probe.is_anycast(rtts)

    def test_synthetic_anycast_detected(self):
        # Two distant vantage points both reporting tiny RTTs is
        # geometrically impossible for a single unicast location.
        probe = AnycastProbe()
        fake = [(city("san jose"), 3.0), (city("washington"), 3.0)]
        assert probe.is_anycast(fake)

    def test_feasibility_bound_is_conservative(self):
        probe = AnycastProbe()
        a, b = city("san jose"), city("washington")
        bound = probe.min_feasible_rtt_sum_ms(a, b)
        # The bound must not exceed the inflated model RTT.
        from repro.geo.latency import rtt_ms

        assert bound < rtt_ms(a, b)
