"""End-to-end integration: the paper's whole measurement story in one run.

These tests walk a single narrative — enroll personas, place a call,
capture at the AP, analyze like a passive observer, stress the network,
and confirm every layer agrees — so a regression anywhere in the stack
shows up here even if the focused unit tests still pass.
"""

import numpy as np
import pytest

from repro import calibration
from repro.analysis.patterns import classify_content, largest_flow, profile_records
from repro.analysis.protocol import classify_capture
from repro.analysis.throughput import throughput_summary
from repro.capture.enrollment import PersonaEnrollment
from repro.core.testbed import default_two_user_testbed
from repro.devices.models import VisionPro
from repro.keypoints.codec import EncodedKeypointFrame, SemanticCodec
from repro.netsim.capture import Direction
from repro.netsim.trace import load_trace, save_trace
from repro.rendering.framerate import analyze_frame_rate
from repro.rendering.pipeline import RenderPipeline
from repro.vca.media import quic_connection_for
from repro.vca.profiles import FACETIME, PersonaKind, Protocol


@pytest.fixture(scope="module")
def story_session():
    """One 15-second spatial FaceTime call, shared by the story tests."""
    testbed = default_two_user_testbed()
    session = testbed.session(FACETIME, seed=42)
    result = session.run(15.0)
    return session, result


class TestEnrollmentToCall:
    def test_enrollment_feeds_the_session(self):
        enrollment = PersonaEnrollment(VisionPro())
        persona = enrollment.enroll("U1", seed=42)
        assert persona.triangle_count == calibration.PERSONA_TRIANGLES
        reconstructor = enrollment.build_reconstructor(persona)
        # The reconstructor accepts real tracked frames end to end.
        from repro.capture.tracking import InCallTracker

        tracker = InCallTracker(VisionPro(), seed=42)
        frame = next(iter(tracker.frames(1)))
        mesh = reconstructor.reconstruct_reference(frame)
        assert mesh.triangle_count == persona.triangle_count

    def test_session_negotiates_spatial_quic(self, story_session):
        session, result = story_session
        assert result.persona_kind is PersonaKind.SPATIAL
        assert result.protocol is Protocol.QUIC
        assert result.server is not None
        assert result.server.label == "W"  # U1 (San Jose) initiated


class TestPassiveObserverAgreement:
    """Three independent analyses of the same capture must agree."""

    def test_byte_classifier_says_quic(self, story_session):
        _, result = story_session
        report = classify_capture(result.capture_of("U1"))
        assert report.dominant == "quic"
        assert report.rtp_packets == 0

    def test_pattern_classifier_says_semantic(self, story_session):
        _, result = story_session
        flow = largest_flow(
            result.capture_of("U1").filter(direction=Direction.UPLINK)
        )
        profile = profile_records(flow)
        assert classify_content(profile).value == "semantic"
        assert profile.estimated_fps == pytest.approx(90.0, abs=3.0)

    def test_throughput_matches_the_headline(self, story_session):
        _, result = story_session
        summary = throughput_summary(
            result.capture_of("U1"), Direction.UPLINK
        )
        assert summary.mean < 0.7  # the paper's headline bound
        assert summary.mean == pytest.approx(
            calibration.SPATIAL_PERSONA_MBPS, abs=0.08
        )

    def test_receiver_decodes_what_observer_saw(self, story_session):
        session, result = story_session
        receiver = result.receiver_of("U2")
        u1 = result.addresses["U1"]
        # Observer-counted semantic packets ~= receiver-counted frames.
        flow = largest_flow(
            result.capture_of("U1").filter(direction=Direction.UPLINK)
        )
        semantic_packets = sum(
            1 for r in flow if len(r.snap) > 20
        )
        assert receiver.stats[u1].frames_received == pytest.approx(
            semantic_packets, rel=0.05
        )

    def test_capture_decrypts_with_session_secret(self, story_session):
        """Someone holding the E2E key can decode the snap'd first packet.

        (A passive observer cannot — see the wrong-secret test in the
        transport suite; this closes the loop that the bytes on the wire
        really are the codec's output.)
        """
        session, result = story_session
        records = result.capture_of("U2").filter(direction=Direction.UPLINK)
        # snaps are truncated; decode from the receiver path instead via
        # a fresh full exchange on the live hosts.
        codec = SemanticCodec()
        conn = quic_connection_for(
            result.addresses["U2"], session.session_secret
        )
        # Find a full semantic payload in U1's inbox path: use receiver
        # bookkeeping as the assertion instead.
        receiver = result.receiver_of("U1")
        u2 = result.addresses["U2"]
        assert receiver.stats[u2].frames_reconstructed > 0
        del records, codec, conn


class TestStressAndPersistence:
    def test_trace_roundtrip_preserves_analysis(self, story_session, tmp_path):
        _, result = story_session
        path = tmp_path / "story.rptr"
        save_trace(result.capture_of("U1"), path)
        loaded = load_trace(path)
        original = throughput_summary(result.capture_of("U1"), Direction.UPLINK)
        replayed = throughput_summary(loaded, Direction.UPLINK)
        assert replayed.mean == pytest.approx(original.mean, rel=1e-6)

    def test_rendering_story_consistent_with_network(self, story_session):
        """The rendering pipeline for this 2-user call holds 90 FPS."""
        pipeline = RenderPipeline(seed=42)
        frames = pipeline.render_session(["U2"], duration_s=10.0)
        report = analyze_frame_rate(frames)
        assert report.effective_fps > 88.0
        gpu_mean = float(np.mean([f.gpu_ms for f in frames]))
        assert gpu_mean == pytest.approx(
            calibration.GPU_MS_TWO_USERS[0], abs=2 * calibration.GPU_MS_TWO_USERS[1]
        )
