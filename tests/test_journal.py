"""RunJournal / RunManifest unit semantics.

The journal's whole value is what it guarantees under abuse: torn tails
skipped, incompatible versions orphaned, last-entry-per-key wins, appends
deduplicated, one-truncation-per-instance so chained sweeps cannot wipe
each other's checkpoints.
"""

from __future__ import annotations

import json

import pytest

from repro.core.journal import (
    JOURNAL_FORMAT_VERSION,
    STATUS_CACHED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_QUARANTINED,
    CellOutcome,
    RunJournal,
    RunManifest,
    run_fingerprint,
)


class TestRunFingerprint:
    def test_order_independent(self):
        assert run_fingerprint(["a", "b", "c"]) == run_fingerprint(
            ["c", "a", "b"])

    def test_sensitive_to_membership(self):
        assert run_fingerprint(["a", "b"]) != run_fingerprint(["a"])

    def test_separator_prevents_concatenation_collisions(self):
        assert run_fingerprint(["ab", "c"]) != run_fingerprint(["a", "bc"])


class TestRunJournal:
    def test_append_load_roundtrip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with RunJournal(path) as journal:
            journal.reset()
            journal.append("k1", "cell-1", STATUS_OK, payload={"v": 1},
                           attempts=2, duration_s=0.5)
            journal.append("k2", "cell-2", STATUS_FAILED,
                           error={"type": "ValueError", "message": "x"})
        fresh = RunJournal(path)
        entries = fresh.load()
        assert set(entries) == {"k1", "k2"}
        assert entries["k1"]["payload"] == {"v": 1}
        assert entries["k1"]["attempts"] == 2
        assert fresh.completed_payloads() == {"k1": {"v": 1}}

    def test_last_entry_per_key_wins(self, tmp_path):
        """A cell that failed then succeeded resumes as a success."""
        path = tmp_path / "j.jsonl"
        with RunJournal(path) as journal:
            journal.reset()
            journal.append("k1", "cell", STATUS_FAILED,
                           error={"type": "TransientError", "message": "x"})
            journal.append("k1", "cell", STATUS_OK, payload={"v": 2})
        fresh = RunJournal(path)
        fresh.load()
        assert fresh.completed_payloads() == {"k1": {"v": 2}}

    def test_duplicate_append_same_status_is_noop(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with RunJournal(path) as journal:
            journal.reset()
            journal.append("k1", "cell", STATUS_OK, payload={"v": 1})
            journal.append("k1", "cell", STATUS_OK, payload={"v": 1})
        lines = path.read_text().splitlines()
        assert len(lines) == 2  # header + exactly one entry

    def test_torn_tail_skipped_and_counted(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with RunJournal(path) as journal:
            journal.reset()
            journal.append("k1", "cell-1", STATUS_OK, payload={"v": 1})
            journal.append("k2", "cell-2", STATUS_OK, payload={"v": 2})
        blob = path.read_bytes()
        path.write_bytes(blob[:-25])  # kill -9 mid-append
        fresh = RunJournal(path)
        entries = fresh.load()
        assert fresh.torn_lines == 1
        assert set(entries) == {"k1"}  # the torn cell costs one replay

    def test_garbage_lines_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with RunJournal(path) as journal:
            journal.reset()
            journal.append("k1", "cell", STATUS_OK, payload={"v": 1})
        with open(path, "ab") as handle:
            handle.write(b"\x00\xff not json\n")
            handle.write(b'["a", "list", "entry"]\n')
        fresh = RunJournal(path)
        entries = fresh.load()
        assert fresh.torn_lines == 2
        assert set(entries) == {"k1"}

    def test_incompatible_version_reads_as_empty(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with open(path, "w") as handle:
            handle.write(json.dumps({"journal": "repro-run",
                                     "version": JOURNAL_FORMAT_VERSION + 1})
                         + "\n")
            handle.write(json.dumps({"key": "k1", "status": STATUS_OK,
                                     "payload": 1}) + "\n")
        journal = RunJournal(path)
        assert journal.load() == {}
        assert journal.completed_payloads() == {}

    def test_missing_file_loads_empty(self, tmp_path):
        journal = RunJournal(tmp_path / "nope.jsonl")
        assert journal.load() == {}

    def test_ensure_fresh_truncates_only_once_per_instance(self, tmp_path):
        """Chained sweeps sharing one journal must not wipe each other."""
        path = tmp_path / "j.jsonl"
        journal = RunJournal(path)
        journal.ensure_fresh()
        journal.append("k1", "sweep-1-cell", STATUS_OK, payload={"v": 1})
        journal.ensure_fresh()  # second sweep, same instance: no-op
        journal.append("k2", "sweep-2-cell", STATUS_OK, payload={"v": 2})
        journal.close()
        fresh = RunJournal(path)
        fresh.load()
        assert set(fresh.completed_payloads()) == {"k1", "k2"}

    def test_fresh_instance_ensure_fresh_does_truncate(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with RunJournal(path) as journal:
            journal.ensure_fresh()
            journal.append("k1", "old-cell", STATUS_OK, payload={"v": 1})
        with RunJournal(path) as journal:
            journal.ensure_fresh()  # a new non-resume run starts clean
        fresh = RunJournal(path)
        assert fresh.load() == {}


class TestRunManifest:
    def _sample(self) -> RunManifest:
        manifest = RunManifest()
        manifest.record(CellOutcome(name="a", key="k1", status=STATUS_OK,
                                    attempts=3, retries=2,
                                    backoff_s=[0.25, 0.5]))
        manifest.record(CellOutcome(name="b", key="k2",
                                    status=STATUS_CACHED, attempts=0))
        manifest.record(CellOutcome(name="c", key="k3",
                                    status=STATUS_QUARANTINED, attempts=1,
                                    error={"type": "PoisonCell",
                                           "message": "bad config",
                                           "category": "poison"}))
        manifest.record(CellOutcome(name="d", key="k4", status=STATUS_OK,
                                    fallback=True, attempts=2))
        return manifest

    def test_queries(self):
        manifest = self._sample()
        assert [c.name for c in manifest.retried()] == ["a"]
        assert [c.name for c in manifest.quarantined()] == ["c"]
        assert [c.name for c in manifest.fallbacks()] == ["d"]
        assert manifest.counts() == {STATUS_OK: 2, STATUS_CACHED: 1,
                                     STATUS_QUARANTINED: 1}

    def test_summary_line(self):
        line = self._sample().summary_line()
        assert "4 cells" in line
        assert "2 ok" in line
        assert "1 quarantined" in line
        assert "1 retried" in line
        assert "1 inline-fallback" in line

    def test_write_is_atomic_and_reads_back(self, tmp_path):
        manifest = self._sample()
        path = tmp_path / "deep" / "manifest.json"
        manifest.write(path)
        assert list(tmp_path.rglob("*.tmp.*")) == []  # no orphan temp
        loaded = RunManifest.read(path)
        assert loaded.counts() == manifest.counts()
        assert loaded.retried()[0].backoff_s == [0.25, 0.5]
        assert loaded.quarantined()[0].error["message"] == "bad config"
        assert loaded.fallbacks()[0].fallback is True

    def test_write_failure_leaves_no_half_manifest(self, tmp_path,
                                                   monkeypatch):
        import os as os_mod

        manifest = self._sample()
        path = tmp_path / "manifest.json"
        manifest.write(path)
        before = path.read_bytes()

        def crash(src, dst):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr(os_mod, "replace", crash)
        with pytest.raises(OSError, match="simulated crash"):
            manifest.write(path)
        monkeypatch.undo()
        assert path.read_bytes() == before  # old manifest intact
