"""Semantic codec and persona reconstruction."""

import numpy as np
import pytest

from repro import calibration
from repro.keypoints.codec import EncodedKeypointFrame, SemanticCodec
from repro.keypoints.reconstruct import (
    SEMANTIC_GROUPS,
    PersonaReconstructor,
    ReconstructionError,
    check_semantic_frame,
    frame_is_reconstructible,
)
from repro.mesh.generate import head_mesh


@pytest.fixture(scope="module")
def codec():
    return SemanticCodec(seed=0)


class TestCodecRoundtrip:
    def test_points_roundtrip(self, codec, motion_frames):
        frame = motion_frames[0]
        decoded = codec.decode(codec.encode(frame))
        assert np.allclose(
            decoded.points, frame.semantic_points().astype(np.float32)
        )
        assert decoded.index == frame.index
        assert decoded.timestamp == pytest.approx(frame.timestamp)

    def test_visibility_roundtrip(self, codec, motion_frames):
        vis = np.ones(74, dtype=bool)
        vis[::3] = False
        decoded = codec.decode(codec.encode(motion_frames[0], visibility=vis))
        assert np.array_equal(decoded.visibility, vis)

    def test_confidence_roundtrip(self, codec, motion_frames):
        conf = np.arange(74, dtype=np.uint8) + 100
        decoded = codec.decode(
            codec.encode(motion_frames[0], confidence=conf)
        )
        assert np.array_equal(decoded.confidence, conf)

    def test_without_confidence_defaults_to_full(self, codec, motion_frames):
        decoded = codec.decode(
            codec.encode(motion_frames[0], include_confidence=False)
        )
        assert (decoded.confidence == 255).all()

    def test_no_confidence_is_smaller(self, codec, motion_frames):
        with_conf = codec.encode(motion_frames[0], include_confidence=True)
        without = codec.encode(motion_frames[1], include_confidence=False)
        assert without.byte_size < with_conf.byte_size

    def test_corrupt_payload_rejected(self, codec):
        with pytest.raises(ValueError):
            codec.decode(EncodedKeypointFrame(b"\x00\x01garbage"))

    def test_truncated_payload_rejected(self, codec, motion_frames):
        import lzma

        good = codec.encode(motion_frames[0]).payload
        filters = [{"id": lzma.FILTER_LZMA2, "preset": 0}]
        raw = lzma.decompress(good, format=lzma.FORMAT_RAW, filters=filters)
        truncated = lzma.compress(raw[:40], format=lzma.FORMAT_RAW,
                                  filters=filters)
        with pytest.raises(ValueError):
            codec.decode(EncodedKeypointFrame(truncated))

    def test_visibility_shape_validated(self, codec, motion_frames):
        with pytest.raises(ValueError):
            codec.encode(motion_frames[0], visibility=np.ones(10, bool))


class TestCodecBitrate:
    def test_experiment_rate_matches_paper(self, codec, motion_frames):
        # Sec. 4.3: 0.64 +/- 0.02 Mbps with the confidence channel.
        sizes = [codec.encode(f).byte_size for f in motion_frames]
        mbps = np.mean(sizes) * 8 * calibration.TARGET_FPS / 1e6
        paper_mean, paper_std = calibration.KEYPOINT_STREAMING_MBPS
        assert abs(mbps - paper_mean) < 3 * paper_std

    def test_production_rate_under_intro_bound(self, codec, motion_frames):
        # Intro: spatial persona consumes < 0.7 Mbps.
        sizes = [
            codec.encode(f, include_confidence=False).byte_size
            for f in motion_frames
        ]
        mbps = np.mean(sizes) * 8 * calibration.TARGET_FPS / 1e6
        assert mbps < 0.7


class TestGroupChecks:
    def test_groups_partition_the_74_points(self):
        covered = sorted(
            i for s in SEMANTIC_GROUPS.values()
            for i in range(s.start, s.stop)
        )
        assert covered == list(range(74))

    def test_full_frame_reconstructible(self, codec, motion_frames):
        decoded = codec.decode(codec.encode(motion_frames[0]))
        assert frame_is_reconstructible(decoded)

    @pytest.mark.parametrize("group", list(SEMANTIC_GROUPS))
    def test_each_missing_group_fails(self, codec, motion_frames, group):
        vis = np.ones(74, dtype=bool)
        vis[SEMANTIC_GROUPS[group]] = False
        decoded = codec.decode(codec.encode(motion_frames[0], visibility=vis))
        with pytest.raises(ReconstructionError, match=group):
            check_semantic_frame(decoded)

    def test_partial_group_loss_tolerated(self, codec, motion_frames):
        vis = np.ones(74, dtype=bool)
        vis[12] = False  # one mouth point of twenty
        decoded = codec.decode(codec.encode(motion_frames[0], visibility=vis))
        assert frame_is_reconstructible(decoded)

    def test_non_finite_points_fail(self, codec, motion_frames):
        decoded = codec.decode(codec.encode(motion_frames[0]))
        decoded.points[0, 0] = np.nan
        assert not frame_is_reconstructible(decoded)


class TestReconstructor:
    @pytest.fixture(scope="class")
    def reconstructor(self):
        return PersonaReconstructor(head_mesh(2000, seed=0))

    def test_reconstruction_preserves_topology(self, reconstructor, codec,
                                               motion_frames):
        decoded = codec.decode(codec.encode(motion_frames[0]))
        mesh = reconstructor.reconstruct(decoded)
        assert mesh.triangle_count == reconstructor.template.triangle_count

    def test_motion_moves_vertices(self, reconstructor, codec, motion_frames):
        a = reconstructor.reconstruct(codec.decode(codec.encode(motion_frames[0])))
        b = reconstructor.reconstruct(codec.decode(codec.encode(motion_frames[50])))
        assert not np.allclose(a.vertices, b.vertices)

    def test_failure_counters(self, codec, motion_frames):
        rec = PersonaReconstructor(head_mesh(2000, seed=1))
        vis = np.ones(74, dtype=bool)
        vis[0:12] = False  # eyes missing
        bad = codec.decode(codec.encode(motion_frames[0], visibility=vis))
        with pytest.raises(ReconstructionError):
            rec.reconstruct(bad)
        good = codec.decode(codec.encode(motion_frames[1]))
        rec.reconstruct(good)
        assert rec.frames_failed == 1
        assert rec.frames_reconstructed == 1

    def test_reference_reconstruction(self, reconstructor, motion_frames):
        mesh = reconstructor.reconstruct_reference(motion_frames[0])
        assert mesh.triangle_count == reconstructor.template.triangle_count

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PersonaReconstructor(head_mesh(2000), falloff_m=0)
        with pytest.raises(ValueError):
            PersonaReconstructor(head_mesh(2000), min_group_coverage=0)
