"""Layered semantic codec and adaptive selection (ablation A4)."""

import numpy as np
import pytest

from repro import calibration
from repro.keypoints.codec import EncodedKeypointFrame
from repro.keypoints.layered import (
    AdaptiveLayerSelector,
    Layer,
    LayeredSemanticCodec,
)


@pytest.fixture(scope="module")
def codec():
    return LayeredSemanticCodec(seed=0)


class TestLayeredEncoding:
    def test_layer_sizes_ordered(self, codec, motion_frames):
        frame = motion_frames[0]
        sizes = {
            layer: codec.encode(frame, layer).byte_size for layer in Layer
        }
        assert sizes[Layer.BASE] < sizes[Layer.STANDARD] < sizes[Layer.FULL]

    def test_base_rate_well_under_cutoff(self, codec, motion_frames):
        sizes = [
            codec.encode(f, Layer.BASE).byte_size for f in motion_frames
        ]
        mbps = np.mean(sizes) * 8 * calibration.TARGET_FPS / 1e6
        assert mbps < 0.3  # far below the 700 Kbps FaceTime cliff

    def test_full_rate_matches_flat_codec(self, codec, motion_frames):
        sizes = [
            codec.encode(f, Layer.FULL).byte_size for f in motion_frames
        ]
        mbps = np.mean(sizes) * 8 * calibration.TARGET_FPS / 1e6
        assert mbps == pytest.approx(0.65, abs=0.05)

    def test_layer_values_truthy(self):
        # select() returns Optional[Layer]; a falsy member would break it.
        assert all(bool(layer) for layer in Layer)


class TestLayeredDecoding:
    def test_full_roundtrip_exact(self, codec, motion_frames):
        frame = motion_frames[0]
        decoded = codec.decode(codec.encode(frame, Layer.FULL))
        assert decoded.layer is Layer.FULL
        assert not decoded.degraded
        assert np.allclose(
            decoded.points, frame.semantic_points().astype(np.float32)
        )

    def test_standard_facial_exact_hands_float16(self, codec, motion_frames):
        frame = motion_frames[0]
        decoded = codec.decode(codec.encode(frame, Layer.STANDARD))
        truth = frame.semantic_points().astype(np.float32)
        assert np.allclose(decoded.points[:32], truth[:32])
        assert np.allclose(decoded.points[32:], truth[32:], atol=1e-3)
        assert not decoded.degraded

    def test_base_freezes_hands_at_rest(self, codec, motion_frames):
        frame = motion_frames[0]
        decoded = codec.decode(codec.encode(frame, Layer.BASE))
        assert decoded.degraded
        assert decoded.layer is Layer.BASE
        from repro.keypoints.schema import TEMPLATES

        rest = np.concatenate(
            [TEMPLATES["left_hand"], TEMPLATES["right_hand"]]
        ).astype(np.float32)
        assert np.allclose(decoded.points[32:], rest)

    def test_base_facial_precision_millimeter(self, codec, motion_frames):
        frame = motion_frames[0]
        decoded = codec.decode(codec.encode(frame, Layer.BASE))
        truth = frame.semantic_points().astype(np.float32)[:32]
        assert np.abs(decoded.points[:32] - truth).max() < 1e-3

    def test_corrupt_payload_rejected(self, codec):
        with pytest.raises(ValueError):
            codec.decode(EncodedKeypointFrame(b"\x01garbage"))

    def test_metadata_preserved(self, codec, motion_frames):
        frame = motion_frames[7]
        decoded = codec.decode(codec.encode(frame, Layer.STANDARD))
        assert decoded.index == frame.index
        assert decoded.timestamp == pytest.approx(frame.timestamp)


class TestAdaptiveSelector:
    @pytest.fixture(scope="class")
    def selector(self):
        return AdaptiveLayerSelector(LayeredSemanticCodec(seed=0))

    def test_rates_profiled_in_order(self, selector):
        assert (
            selector.layer_mbps[Layer.BASE]
            < selector.layer_mbps[Layer.STANDARD]
            < selector.layer_mbps[Layer.FULL]
        )

    def test_generous_rate_picks_full(self, selector):
        assert selector.select(2.0) is Layer.FULL

    def test_medium_rate_picks_standard(self, selector):
        assert selector.select(0.6) is Layer.STANDARD

    def test_tight_rate_picks_base(self, selector):
        assert selector.select(0.3) is Layer.BASE

    def test_starved_rate_picks_nothing(self, selector):
        assert selector.select(0.05) is None

    def test_headroom_respected(self):
        tight = AdaptiveLayerSelector(LayeredSemanticCodec(seed=0),
                                      headroom=0.5)
        generous = AdaptiveLayerSelector(LayeredSemanticCodec(seed=0),
                                         headroom=1.0)
        rate = tight.layer_mbps[Layer.FULL] * 1.1
        assert generous.select(rate) is Layer.FULL
        assert tight.select(rate) is not Layer.FULL

    def test_negative_rate_rejected(self, selector):
        with pytest.raises(ValueError):
            selector.select(-1.0)

    def test_invalid_headroom(self):
        with pytest.raises(ValueError):
            AdaptiveLayerSelector(LayeredSemanticCodec(), headroom=0.0)


class TestLayeredAblation:
    def test_survives_below_facetime_cutoff(self):
        from repro.experiments import ablations

        result = ablations.run_layered_codec(
            limits_kbps=(600.0, 300.0, 100.0), duration_s=4.0, seed=0
        )
        by_limit = {p.limit_kbps: p for p in result.points}
        assert by_limit[600.0].availability >= 0.9
        assert by_limit[300.0].availability >= 0.9
        assert by_limit[300.0].degraded
        assert by_limit[100.0].availability == 0.0
