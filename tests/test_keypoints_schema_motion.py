"""Keypoint schemas and the synthetic motion generator."""

import numpy as np
import pytest

from repro import calibration
from repro.keypoints.motion import KeypointFrame, MotionSynthesizer, capture_session
from repro.keypoints.schema import (
    SEMANTIC_FACIAL_INDICES,
    TEMPLATES,
    FacialLandmarks,
    HandLandmarks,
    semantic_subset,
)


class TestSchema:
    def test_dlib_layout_covers_68(self):
        f = FacialLandmarks()
        ranges = [f.JAW, f.RIGHT_BROW, f.LEFT_BROW, f.NOSE,
                  f.RIGHT_EYE, f.LEFT_EYE, f.MOUTH]
        covered = sorted(i for lo, hi in ranges for i in range(lo, hi))
        assert covered == list(range(68))

    def test_semantic_subset_is_32(self):
        assert len(SEMANTIC_FACIAL_INDICES) == 32

    def test_semantic_subset_is_eyes_and_mouth(self):
        f = FacialLandmarks()
        eyes = set(range(*f.RIGHT_EYE)) | set(range(*f.LEFT_EYE))
        mouth = set(range(*f.MOUTH))
        assert set(SEMANTIC_FACIAL_INDICES.tolist()) == eyes | mouth

    def test_semantic_subset_shape_validation(self):
        with pytest.raises(ValueError):
            semantic_subset(np.zeros((60, 3)))

    def test_hand_template_has_21_points(self):
        assert TEMPLATES["left_hand"].shape == (HandLandmarks.TOTAL, 3)
        assert TEMPLATES["right_hand"].shape == (21, 3)

    def test_hands_are_on_opposite_sides(self):
        left = TEMPLATES["left_hand"]
        right = TEMPLATES["right_hand"]
        assert np.allclose(left[0], right[0] * np.array([1, -1, 1]))  # wrists
        assert left[:, 1].mean() == pytest.approx(-right[:, 1].mean(), rel=0.1)

    def test_face_template_anatomy(self):
        face = TEMPLATES["face"]
        f = FacialLandmarks()
        eyes_z = face[f.RIGHT_EYE[0]:f.RIGHT_EYE[1], 2].mean()
        mouth_z = face[f.MOUTH[0]:f.MOUTH[1], 2].mean()
        assert eyes_z > mouth_z  # eyes above the mouth


class TestMotion:
    def test_frame_shapes(self, motion_frames):
        frame = motion_frames[0]
        assert frame.face.shape == (68, 3)
        assert frame.left_hand.shape == (21, 3)
        assert frame.right_hand.shape == (21, 3)

    def test_semantic_points_count(self, motion_frames):
        assert motion_frames[0].semantic_points().shape == (
            calibration.SEMANTIC_KEYPOINTS_TOTAL, 3
        )

    def test_timestamps_follow_fps(self, motion_frames):
        dt = motion_frames[1].timestamp - motion_frames[0].timestamp
        assert dt == pytest.approx(1.0 / 90.0)

    def test_deterministic_per_seed(self):
        a = capture_session(10, seed=4)
        b = capture_session(10, seed=4)
        assert np.array_equal(a[5].face, b[5].face)

    def test_distinct_seeds_distinct_motion(self):
        a = capture_session(10, seed=1)
        b = capture_session(10, seed=2)
        assert not np.allclose(a[5].face, b[5].face)

    def test_motion_is_bounded(self):
        # Ornstein-Uhlenbeck head pose must not random-walk away.
        frames = capture_session(900, seed=0)
        face_centers = np.array([f.face.mean(axis=0) for f in frames])
        assert np.abs(face_centers).max() < 1.0  # stays within a meter

    def test_motion_is_smooth(self):
        frames = capture_session(200, seed=0)
        centers = np.array([f.face.mean(axis=0) for f in frames])
        step = np.linalg.norm(np.diff(centers, axis=0), axis=1)
        assert step.max() < 0.05  # < 5 cm per 90 FPS frame

    def test_blinks_occur(self):
        # Eye ring height collapses during a blink at least once in 10 s.
        frames = capture_session(900, seed=2)
        f = FacialLandmarks()
        heights = []
        for frame in frames:
            eye = frame.face[f.RIGHT_EYE[0]:f.RIGHT_EYE[1]]
            heights.append(eye[:, 2].max() - eye[:, 2].min())
        heights = np.array(heights)
        assert heights.min() < 0.5 * np.median(heights)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MotionSynthesizer(fps=0)
        with pytest.raises(ValueError):
            MotionSynthesizer(speech_activity=1.5)
        with pytest.raises(ValueError):
            capture_session(0)
