"""Regression tests for three latent bugs fixed alongside the obs layer.

Each test fails on the pre-fix code:

1. **Heap growth under mass cancellation** — lazily-cancelled events used
   to sit in the simulator heap until they reached the front, so a
   fault-heavy run (long blackouts revoking far-future deliveries) grew
   the heap without bound.  The fix compacts the heap whenever cancelled
   entries outnumber live ones; these tests pin the bound *and* prove
   compaction cannot change ``pending_events()`` or firing order.

2. **Numpy scalars poisoned cache keys** — ``canonical()`` raised
   ``TypeError`` for ``np.int64``/``np.float32`` kwargs and let
   ``np.float64`` through only by accident (float subclass).  The fix
   coerces numpy scalars to their native twins, so a numpy-typed kwarg
   and its native twin key identically.

3. **Workers re-hashed the source tree** — ``code_fingerprint()`` is
   memoized per process, so every *spawned* worker re-read ~180 source
   files for its first cell.  The runner now computes it once in the
   parent and ships it with the task payload; the test proves a spawned
   worker observes the parent's (sentinel) fingerprint instead of
   computing its own.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

import repro.core.cache as cache_mod
import repro.core.parallel as parallel_mod
from repro.core.cache import code_fingerprint, set_code_fingerprint, task_key
from repro.core.parallel import CellTask, TaskRunner
from repro.netsim.engine import COMPACT_MIN_QUEUE, Simulator


# ----------------------------------------------------------------------
# 1. heap compaction under mass cancellation
# ----------------------------------------------------------------------


def test_mass_cancellation_keeps_heap_bounded():
    sim = Simulator()
    live = [sim.schedule_at(float(i), lambda: None) for i in range(10)]
    doomed = [sim.schedule_at(1000.0 + i * 1e-3, lambda: None)
              for i in range(5000)]
    for handle in doomed:
        sim.cancel(handle)
    # Pre-fix: all 5000 cancelled entries linger (len(_queue) == 5010).
    assert len(sim._queue) < 2 * (len(live) + COMPACT_MIN_QUEUE)
    assert sim.heap_compactions >= 1
    assert sim.pending_events() == len(live)
    assert sim.events_cancelled == len(doomed)


def test_compaction_preserves_firing_order_and_counts():
    fired = []
    reference = []
    # Two identical schedules; only one suffers mass cancellation.
    noisy, clean = Simulator(), Simulator()
    for i in range(400):
        time_s = (i * 37 % 100) + i * 1e-4  # interleaved, all distinct
        noisy.schedule_at(time_s, lambda t=time_s: fired.append(t))
        clean.schedule_at(time_s, lambda t=time_s: reference.append(t))
    doomed = [noisy.schedule_at(500.0 + i * 1e-3, lambda: None)
              for i in range(3000)]
    for handle in doomed:
        noisy.cancel(handle)
    assert noisy.heap_compactions >= 1
    noisy.run()
    clean.run()
    assert fired == reference
    assert noisy.events_fired == 400
    assert noisy.now == clean.now


def test_compaction_mid_run_keeps_hoisted_queue_valid():
    """Cancelling (and compacting) from inside a callback must not strand
    the run loop on a stale queue list."""
    sim = Simulator()
    fired = []
    doomed = [sim.schedule_at(100.0 + i * 1e-3, lambda: None)
              for i in range(200)]

    def cancel_all() -> None:
        for handle in doomed:
            sim.cancel(handle)

    sim.schedule_at(1.0, cancel_all)
    sim.schedule_at(2.0, lambda: fired.append("after"))
    sim.run()
    assert fired == ["after"]
    assert sim.heap_compactions >= 1
    assert sim.pending_events() == 0


def test_small_queues_never_compact():
    sim = Simulator()
    handles = [sim.schedule_at(float(i + 1), lambda: None)
               for i in range(COMPACT_MIN_QUEUE - 2)]
    for handle in handles:
        sim.cancel(handle)
    assert sim.heap_compactions == 0  # rebuild would cost more than lazy pops
    sim.run()
    assert sim.pending_events() == 0


def test_queue_high_water_tracks_peak_depth():
    sim = Simulator()
    for i in range(25):
        sim.schedule_at(float(i), lambda: None)
    sim.run(until=10.0)
    for i in range(3):
        sim.schedule_at(20.0 + i, lambda: None)
    assert sim.queue_high_water == 25
    assert sim.stats()["queue_high_water"] == 25


# ----------------------------------------------------------------------
# 2. numpy scalars in cache keys
# ----------------------------------------------------------------------


def test_numpy_scalar_kwargs_key_like_native_twins():
    native = task_key("cell_fn", {"seed": 3, "scale": 0.5, "deep": True,
                                  "ratio": 0.25})
    numpyed = task_key("cell_fn", {"seed": np.int64(3),
                                   "scale": np.float64(0.5),
                                   "deep": np.bool_(True),
                                   "ratio": np.float32(0.25)})
    assert native == numpyed


def test_numpy_scalars_nested_in_containers():
    native = task_key("cell_fn", {"grid": [1, 2], "cfg": {"w": 0.1}})
    numpyed = task_key("cell_fn", {"grid": [np.int32(1), np.int64(2)],
                                   "cfg": {"w": np.float64(0.1)}})
    assert native == numpyed


def test_canonical_coerces_to_native_types():
    from repro.core.cache import canonical

    assert canonical(np.int64(7)) == 7
    assert type(canonical(np.int64(7))) is int
    assert type(canonical(np.float32(0.5))) is float
    assert type(canonical(np.float64(0.5))) is float
    assert type(canonical(np.bool_(False))) is bool
    with pytest.raises(TypeError):
        canonical(object())  # everything else still fails loudly


# ----------------------------------------------------------------------
# 3. parent fingerprint ships to workers
# ----------------------------------------------------------------------

SENTINEL_FINGERPRINT = "f" * 64


def test_set_code_fingerprint_validates_digest():
    with pytest.raises(ValueError):
        set_code_fingerprint("not-a-digest")
    with pytest.raises(ValueError):
        set_code_fingerprint("F" * 64)  # uppercase hex is not canonical


def test_spawned_worker_adopts_parent_fingerprint(monkeypatch):
    """A spawn-context worker must see the parent's memoized fingerprint.

    ``spawn`` matters: the default fork context inherits the parent memo
    and masks the bug.  The cell function *is* ``code_fingerprint``, so
    the result is whatever the worker would key its cells with — with the
    fix it is the parent's sentinel, without it the worker re-hashes the
    source tree and returns the real digest.
    """
    monkeypatch.setattr(cache_mod, "_CODE_FINGERPRINT",
                        SENTINEL_FINGERPRINT)
    assert code_fingerprint() == SENTINEL_FINGERPRINT
    spawn_ctx = multiprocessing.get_context("spawn")
    monkeypatch.setattr(parallel_mod.multiprocessing, "get_context",
                        lambda: spawn_ctx)
    tasks = [CellTask(name="fingerprint-probe", fn=code_fingerprint)]
    results = TaskRunner(jobs=2).run(tasks)
    assert results == [SENTINEL_FINGERPRINT]


def test_inline_runner_uses_memoized_fingerprint(monkeypatch):
    monkeypatch.setattr(cache_mod, "_CODE_FINGERPRINT",
                        SENTINEL_FINGERPRINT)
    results = TaskRunner(jobs=1).run(
        [CellTask(name="fingerprint-probe", fn=code_fingerprint)]
    )
    assert results == [SENTINEL_FINGERPRINT]
