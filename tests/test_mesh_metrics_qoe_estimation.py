"""Mesh quality metrics and passive QoE estimation."""

import numpy as np
import pytest

from repro.analysis.qoe_estimation import estimate_from_capture
from repro.core.testbed import default_two_user_testbed
from repro.mesh.codec import DracoLikeCodec
from repro.mesh.generate import head_mesh
from repro.mesh.metrics import (
    quality_fraction,
    sample_surface,
    surface_distance,
)
from repro.mesh.simplify import decimate
from repro.netsim.capture import Direction
from repro.netsim.shaper import TrafficShaper
from repro.vca.profiles import FACETIME, WEBEX, ZOOM


@pytest.fixture(scope="module")
def head():
    return head_mesh(4000, seed=0, scan_like=False)


class TestSurfaceSampling:
    def test_samples_on_surface_scale(self, head):
        points = sample_surface(head, 500, seed=0)
        assert points.shape == (500, 3)
        lo, hi = head.bounding_box()
        assert (points >= lo - 1e-9).all()
        assert (points <= hi + 1e-9).all()

    def test_sampling_deterministic(self, head):
        a = sample_surface(head, 100, seed=3)
        b = sample_surface(head, 100, seed=3)
        assert np.array_equal(a, b)

    def test_invalid_count(self, head):
        with pytest.raises(ValueError):
            sample_surface(head, 0)


class TestSurfaceDistance:
    def test_identical_meshes_near_zero(self, head):
        distance = surface_distance(head, head, n_samples=500)
        # Samples sit inside triangles; nearest-vertex distance is
        # bounded by the edge lengths, tiny relative to the bbox.
        assert distance.normalized_mean < 0.02

    def test_decimation_increases_distance(self, head):
        mild = decimate(head, 48)
        harsh = decimate(head, 8)
        d_mild = surface_distance(head, mild, n_samples=500)
        d_harsh = surface_distance(head, harsh, n_samples=500)
        assert d_harsh.mean > d_mild.mean

    def test_codec_quantization_visible(self, head):
        coarse = DracoLikeCodec(quantization_bits=5)
        fine = DracoLikeCodec(quantization_bits=14)
        d_coarse = surface_distance(
            head, coarse.decode(coarse.encode(head)), n_samples=400
        )
        d_fine = surface_distance(
            head, fine.decode(fine.encode(head)), n_samples=400
        )
        assert d_coarse.mean > d_fine.mean

    def test_percentiles_ordered(self, head):
        distance = surface_distance(head, decimate(head, 12), n_samples=500)
        assert distance.mean <= distance.p95 <= distance.max


class TestQualityFraction:
    def test_identity_near_one(self, head):
        assert quality_fraction(head, head, n_samples=400) > 0.7

    def test_monotone_in_decimation(self, head):
        q_mild = quality_fraction(head, decimate(head, 48), n_samples=400)
        q_harsh = quality_fraction(head, decimate(head, 8), n_samples=400)
        assert 0.0 <= q_harsh < q_mild <= 1.0


class TestPassiveQoeEstimation:
    def test_clean_webex_scores_high(self):
        result = default_two_user_testbed().session(WEBEX, seed=0).run(8.0)
        estimate = estimate_from_capture(
            result.capture_of("U1"), Direction.DOWNLINK,
            one_way_delay_ms=30.0,
        )
        assert estimate.protocol == "rtp"
        assert estimate.estimated_loss == pytest.approx(0.0)
        assert estimate.qoe_score > 0.9

    def test_lossy_zoom_scores_lower(self):
        session = default_two_user_testbed().session(ZOOM, seed=1)
        session.shape_uplink("U2", TrafficShaper(loss=0.10, seed=5))
        result = session.run(8.0)
        estimate = estimate_from_capture(
            result.capture_of("U1"), Direction.DOWNLINK,
            one_way_delay_ms=30.0,
        )
        assert estimate.estimated_loss > 0.05
        assert estimate.qoe_score < 0.92

    def test_quic_hides_loss(self):
        result = default_two_user_testbed().session(FACETIME, seed=0).run(6.0)
        estimate = estimate_from_capture(
            result.capture_of("U1"), Direction.DOWNLINK,
            one_way_delay_ms=30.0,
        )
        assert estimate.protocol == "quic"
        assert estimate.estimated_loss is None  # the Sec. 5 limitation
        assert estimate.estimated_fps == pytest.approx(90.0, abs=4.0)

    def test_long_path_penalized(self):
        result = default_two_user_testbed().session(WEBEX, seed=0).run(6.0)
        near = estimate_from_capture(result.capture_of("U1"),
                                     one_way_delay_ms=30.0)
        far = estimate_from_capture(result.capture_of("U1"),
                                    one_way_delay_ms=220.0)
        assert far.qoe_score < near.qoe_score

    def test_empty_direction_rejected(self):
        from repro.netsim.capture import PacketCapture

        with pytest.raises(ValueError):
            estimate_from_capture(PacketCapture("10.0.0.2"))
