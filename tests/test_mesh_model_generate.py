"""Triangle mesh container and the parametric head generator."""

import numpy as np
import pytest

from repro import calibration
from repro.mesh.generate import head_mesh, persona_mesh, sketchfab_head_set
from repro.mesh.model import TriangleMesh


class TestTriangleMesh:
    def test_counts(self, small_head):
        assert small_head.triangle_count == 2000
        assert small_head.vertex_count == len(small_head.vertices)

    def test_bad_shapes_rejected(self):
        with pytest.raises(ValueError):
            TriangleMesh(np.zeros((3, 2)), np.zeros((1, 3), dtype=int))
        with pytest.raises(ValueError):
            TriangleMesh(np.zeros((3, 3)), np.zeros((1, 4), dtype=int))

    def test_out_of_range_faces_rejected(self):
        with pytest.raises(ValueError):
            TriangleMesh(np.zeros((3, 3)), np.array([[0, 1, 5]]))

    def test_bounding_box_contains_vertices(self, small_head):
        lo, hi = small_head.bounding_box()
        assert (small_head.vertices >= lo - 1e-12).all()
        assert (small_head.vertices <= hi + 1e-12).all()

    def test_surface_area_positive(self, small_head):
        assert small_head.surface_area() > 0

    def test_translation_preserves_area(self, small_head):
        moved = small_head.translated(np.array([1.0, 2.0, 3.0]))
        assert moved.surface_area() == pytest.approx(small_head.surface_area())

    def test_scaling_scales_area_quadratically(self, small_head):
        scaled = small_head.scaled(2.0)
        assert scaled.surface_area() == pytest.approx(
            4.0 * small_head.surface_area(), rel=1e-9
        )

    def test_scale_must_be_positive(self, small_head):
        with pytest.raises(ValueError):
            small_head.scaled(0.0)

    def test_copy_is_independent(self, small_head):
        copy = small_head.copy()
        copy.vertices[0] += 1.0
        assert not np.array_equal(copy.vertices[0], small_head.vertices[0])


class TestHeadGenerator:
    def test_exact_triangle_count(self):
        for target in (2000, 5000, 78_030):
            assert head_mesh(target).triangle_count == target

    def test_odd_count_rejected(self):
        with pytest.raises(ValueError):
            head_mesh(2001)

    def test_tiny_count_rejected(self):
        with pytest.raises(ValueError):
            head_mesh(10)

    def test_persona_matches_realitykit_count(self, persona):
        assert persona.triangle_count == calibration.PERSONA_TRIANGLES

    def test_human_scale(self, persona):
        lo, hi = persona.bounding_box()
        extent = float(np.max(hi - lo))
        assert 0.15 < extent < 0.40  # a head is ~20-30 cm

    def test_seeds_give_distinct_heads(self):
        a = head_mesh(2000, seed=0)
        b = head_mesh(2000, seed=1)
        assert not np.allclose(a.vertices, b.vertices)

    def test_same_seed_is_deterministic(self):
        a = head_mesh(2000, seed=5)
        b = head_mesh(2000, seed=5)
        assert np.array_equal(a.vertices, b.vertices)
        assert np.array_equal(a.faces, b.faces)

    def test_no_degenerate_faces_without_scan_noise(self):
        mesh = head_mesh(2000, seed=0, scan_like=False)
        assert mesh.degenerate_face_count() == 0

    def test_scan_like_alters_vertex_order(self):
        grid = head_mesh(2000, seed=0, scan_like=False)
        scan = head_mesh(2000, seed=0, scan_like=True)
        assert grid.triangle_count == scan.triangle_count
        assert not np.allclose(grid.vertices, scan.vertices)


class TestSketchfabSet:
    def test_five_heads_in_paper_range(self):
        heads = sketchfab_head_set()
        assert len(heads) == 5
        low, high = calibration.SKETCHFAB_HEAD_TRIANGLE_RANGE
        for head in heads:
            assert low <= head.triangle_count <= high + 1

    def test_counts_span_the_range(self):
        counts = [h.triangle_count for h in sketchfab_head_set()]
        assert counts == sorted(counts)
        assert counts[-1] - counts[0] >= 18_000
