"""Mesh decimation and the Draco-like codec."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import calibration
from repro.mesh.codec import DracoLikeCodec, _pack_uint, _unpack_uint, _unzigzag, _zigzag
from repro.mesh.generate import head_mesh, sketchfab_head_set
from repro.mesh.simplify import decimate, decimate_to_target


class TestDecimate:
    def test_reduces_triangles(self, small_head):
        reduced = decimate(small_head, 8)
        assert 0 < reduced.triangle_count < small_head.triangle_count

    def test_monotone_in_resolution(self, small_head):
        coarse = decimate(small_head, 6)
        fine = decimate(small_head, 24)
        assert coarse.triangle_count <= fine.triangle_count

    def test_preserves_scale(self, small_head):
        reduced = decimate(small_head, 16)
        lo0, hi0 = small_head.bounding_box()
        lo1, hi1 = reduced.bounding_box()
        assert np.allclose(hi1 - lo1, hi0 - lo0, rtol=0.3)

    def test_bad_resolution_rejected(self, small_head):
        with pytest.raises(ValueError):
            decimate(small_head, 0)

    def test_to_target_hits_tolerance(self, small_head):
        target = 600
        reduced = decimate_to_target(small_head, target, tolerance=0.25)
        assert abs(reduced.triangle_count - target) <= 0.25 * target

    def test_to_target_noop_when_target_above(self, small_head):
        same = decimate_to_target(small_head, small_head.triangle_count + 10)
        assert same.triangle_count == small_head.triangle_count

    def test_to_target_rejects_tiny(self, small_head):
        with pytest.raises(ValueError):
            decimate_to_target(small_head, 2)


class TestZigzag:
    @given(st.lists(st.integers(min_value=-2**40, max_value=2**40),
                    min_size=1, max_size=100))
    def test_roundtrip(self, values):
        arr = np.array(values, dtype=np.int64)
        assert np.array_equal(_unzigzag(_zigzag(arr)), arr)

    def test_small_magnitudes_stay_small(self):
        assert _zigzag(np.array([0], dtype=np.int64))[0] == 0
        assert _zigzag(np.array([-1], dtype=np.int64))[0] == 1
        assert _zigzag(np.array([1], dtype=np.int64))[0] == 2

    @given(st.lists(st.integers(min_value=0, max_value=2**31),
                    min_size=1, max_size=50))
    def test_pack_roundtrip(self, values):
        arr = np.array(values, dtype=np.uint64)
        blob = _pack_uint(arr)
        assert np.array_equal(_unpack_uint(blob, len(arr)), arr)


class TestDracoLikeCodec:
    def test_topology_lossless(self, small_head):
        codec = DracoLikeCodec()
        decoded = codec.decode(codec.encode(small_head))
        assert np.array_equal(decoded.faces, small_head.faces)

    def test_position_error_within_bound(self, small_head):
        codec = DracoLikeCodec(quantization_bits=11)
        decoded = codec.decode(codec.encode(small_head))
        error = np.abs(decoded.vertices - small_head.vertices).max()
        assert error <= codec.max_position_error(small_head)

    def test_more_bits_less_error(self, small_head):
        coarse = DracoLikeCodec(quantization_bits=8)
        fine = DracoLikeCodec(quantization_bits=14)
        err_coarse = np.abs(
            coarse.decode(coarse.encode(small_head)).vertices - small_head.vertices
        ).max()
        err_fine = np.abs(
            fine.decode(fine.encode(small_head)).vertices - small_head.vertices
        ).max()
        assert err_fine < err_coarse

    def test_more_bits_bigger_payload(self, small_head):
        small = DracoLikeCodec(quantization_bits=8).encode(small_head)
        big = DracoLikeCodec(quantization_bits=16).encode(small_head)
        assert small.byte_size < big.byte_size

    def test_invalid_quantization_rejected(self):
        with pytest.raises(ValueError):
            DracoLikeCodec(quantization_bits=2)
        with pytest.raises(ValueError):
            DracoLikeCodec(quantization_bits=30)

    def test_decode_rejects_garbage(self):
        from repro.mesh.codec import EncodedMesh

        with pytest.raises(ValueError):
            DracoLikeCodec().decode(EncodedMesh(b"NOPE" + b"\x00" * 64))

    def test_bitrate_arithmetic(self, small_head):
        encoded = DracoLikeCodec().encode(small_head)
        assert encoded.bitrate_mbps(90) == pytest.approx(
            encoded.byte_size * 8 * 90 / 1e6
        )

    def test_compression_beats_raw(self, small_head):
        raw_bytes = small_head.vertex_count * 12 + small_head.triangle_count * 12
        encoded = DracoLikeCodec().encode(small_head)
        assert encoded.byte_size < raw_bytes


class TestPaperCalibration:
    def test_head_set_streaming_rate_matches_paper(self):
        # Sec. 4.3: 107.4 +/- 14.1 Mbps for 70-90K-triangle heads at 90 FPS.
        codec = DracoLikeCodec()
        rates = [
            codec.encode(h).bitrate_mbps(calibration.TARGET_FPS)
            for h in sketchfab_head_set()
        ]
        mean = float(np.mean(rates))
        paper_mean, paper_std = calibration.DRACO_STREAMING_MBPS
        assert abs(mean - paper_mean) < 1.5 * paper_std

    def test_streaming_rate_dwarfs_semantic_rate(self):
        codec = DracoLikeCodec()
        smallest = min(
            codec.encode(h).bitrate_mbps(calibration.TARGET_FPS)
            for h in sketchfab_head_set()
        )
        assert smallest > 50 * calibration.SPATIAL_PERSONA_MBPS
