"""Texture atlas codec and mesh file I/O."""

import numpy as np
import pytest

from repro import calibration
from repro.mesh.codec import DracoLikeCodec
from repro.mesh.generate import head_mesh
from repro.mesh.io import load_obj, load_ply, save_obj, save_ply
from repro.mesh.texture import (
    TextureAtlas,
    TextureCodec,
    skin_texture,
    textured_streaming_mbps,
)


class TestTextureAtlas:
    def test_skin_texture_shape(self):
        atlas = skin_texture(256, seed=0)
        assert atlas.pixels.shape == (256, 256, 3)
        assert atlas.resolution == 256

    def test_pixels_in_unit_range(self):
        atlas = skin_texture(128, seed=1)
        assert atlas.pixels.min() >= 0.0
        assert atlas.pixels.max() <= 1.0

    def test_invalid_resolution(self):
        with pytest.raises(ValueError):
            skin_texture(100)  # not a multiple of 8
        with pytest.raises(ValueError):
            skin_texture(0)

    def test_atlas_validation(self):
        with pytest.raises(ValueError):
            TextureAtlas(np.zeros((10, 10, 3)))  # not multiple of 8
        with pytest.raises(ValueError):
            TextureAtlas(np.zeros((8, 8)))


class TestTextureCodec:
    def test_roundtrip_close(self):
        atlas = skin_texture(128, seed=0)
        codec = TextureCodec(quality=90)
        decoded = codec.decode(codec.encode(atlas))
        error = np.abs(decoded.pixels - atlas.pixels).mean()
        assert error < 0.02

    def test_higher_quality_bigger_and_better(self):
        atlas = skin_texture(128, seed=0)
        low, high = TextureCodec(quality=20), TextureCodec(quality=95)
        low_payload, high_payload = low.encode(atlas), high.encode(atlas)
        assert len(low_payload) < len(high_payload)
        low_err = np.abs(low.decode(low_payload).pixels - atlas.pixels).mean()
        high_err = np.abs(high.decode(high_payload).pixels - atlas.pixels).mean()
        assert high_err < low_err

    def test_compression_beats_raw(self):
        atlas = skin_texture(256, seed=0)
        raw = atlas.pixels.astype(np.float32).nbytes
        assert len(TextureCodec().encode(atlas)) < raw / 4

    def test_invalid_quality(self):
        with pytest.raises(ValueError):
            TextureCodec(quality=0)
        with pytest.raises(ValueError):
            TextureCodec(quality=101)

    def test_truncated_payload_rejected(self):
        with pytest.raises(ValueError):
            TextureCodec().decode(b"\x00\x01")


class TestTexturedStreaming:
    def test_texture_makes_mesh_streaming_worse(self):
        # Sec. 4.3's "even without texture" caveat, quantified.
        codec = DracoLikeCodec()
        geometry = codec.encode(head_mesh(70_000, seed=0)).byte_size
        texture = len(TextureCodec(quality=75).encode(skin_texture(512)))
        bare = textured_streaming_mbps(geometry, 0, calibration.TARGET_FPS)
        textured = textured_streaming_mbps(geometry, texture,
                                           calibration.TARGET_FPS)
        assert textured > bare

    def test_refresh_fraction_scales_cost(self):
        full = textured_streaming_mbps(1000, 1000, 90, 1.0)
        partial = textured_streaming_mbps(1000, 1000, 90, 0.25)
        assert partial < full
        assert partial == pytest.approx(
            textured_streaming_mbps(1000, 250, 90, 1.0)
        )

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            textured_streaming_mbps(1, 1, 90, 1.5)


class TestObjIo:
    def test_roundtrip(self, small_head, tmp_path):
        path = tmp_path / "head.obj"
        save_obj(small_head, path)
        loaded = load_obj(path)
        assert loaded.triangle_count == small_head.triangle_count
        assert np.allclose(loaded.vertices, small_head.vertices, atol=1e-6)
        assert np.array_equal(loaded.faces, small_head.faces)

    def test_slash_indices_tolerated(self, tmp_path):
        path = tmp_path / "slashes.obj"
        path.write_text("v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1/1 2/2 3/3\n")
        mesh = load_obj(path)
        assert mesh.triangle_count == 1

    def test_quad_face_rejected(self, tmp_path):
        path = tmp_path / "quad.obj"
        path.write_text("v 0 0 0\nv 1 0 0\nv 0 1 0\nv 1 1 0\nf 1 2 3 4\n")
        with pytest.raises(ValueError, match="triangles"):
            load_obj(path)


class TestPlyIo:
    def test_roundtrip(self, small_head, tmp_path):
        path = tmp_path / "head.ply"
        save_ply(small_head, path)
        loaded = load_ply(path)
        assert loaded.triangle_count == small_head.triangle_count
        assert np.allclose(loaded.vertices, small_head.vertices, atol=1e-6)
        assert np.array_equal(loaded.faces, small_head.faces)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.ply"
        path.write_bytes(b"not a ply file at all")
        with pytest.raises(ValueError):
            load_ply(path)

    def test_formats_agree(self, tmp_path):
        mesh = head_mesh(500, seed=2, scan_like=False)
        obj_path, ply_path = tmp_path / "m.obj", tmp_path / "m.ply"
        save_obj(mesh, obj_path)
        save_ply(mesh, ply_path)
        from_obj, from_ply = load_obj(obj_path), load_ply(ply_path)
        assert np.allclose(from_obj.vertices, from_ply.vertices, atol=1e-6)
        assert np.array_equal(from_obj.faces, from_ply.faces)
