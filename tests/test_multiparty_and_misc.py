"""Multi-party statistics, report sections, and remaining odds and ends."""

import pytest

from repro import calibration
from repro.core.testbed import multi_user_testbed
from repro.devices.models import MacBook
from repro.geo.regions import city
from repro.netsim.capture import Direction
from repro.netsim.engine import Simulator
from repro.netsim.network import Network
from repro.netsim.node import Host
from repro.vca.profiles import PROFILES, TEAMS, WEBEX


class TestMultiPartyStats:
    @pytest.fixture(scope="class")
    def result(self):
        testbed = multi_user_testbed(
            3, device_factory=MacBook,
            cities=["san jose", "dallas", "washington"],
        )
        return testbed.session(WEBEX, seed=0).run(8.0)

    def test_collector_tracks_every_remote_sender(self, result):
        stats = result.stats_of("U1")
        assert len(stats.origins()) == 2

    def test_each_stream_at_full_rate(self, result):
        stats = result.stats_of("U1")
        for origin in stats.origins():
            snapshot = stats.snapshot(origin)
            assert snapshot.frame_rate_fps == pytest.approx(30.0, abs=2.0)
            assert snapshot.receive_mbps == pytest.approx(4.3, rel=0.12)

    def test_downlink_double_of_two_party(self, result):
        down = result.capture_of("U1").total_bytes(
            Direction.DOWNLINK
        ) * 8 / 8.0 / 1e6
        assert down == pytest.approx(2 * 4.3, rel=0.12)

    def test_rtcp_rtts_collected(self, result):
        stats = result.stats_of("U1")
        assert stats.measured_rtts_ms
        # Relayed through the initiator-nearest (W) server: tens of ms.
        assert 10 < min(stats.measured_rtts_ms) < 120


class TestReportSections:
    def test_rate_section(self):
        from repro.report import ReportSettings, rate_section

        markdown = rate_section(ReportSettings.quick())
        assert "Cutoff" in markdown
        assert "700" in markdown

    def test_ablations_section_lists_all_four(self):
        from repro.report import ReportSettings, ablations_section

        markdown = ablations_section(ReportSettings.quick())
        for tag in ("A1", "A2", "A3", "A4"):
            assert tag in markdown

    def test_protocols_section(self):
        from repro.report import ReportSettings, protocols_section

        markdown = protocols_section(ReportSettings.quick())
        assert "quic" in markdown
        assert "unicast" in markdown


class TestNetsimOddsAndEnds:
    def test_network_stats_drop_accounting(self):
        from repro.netsim.packet import IPPROTO_UDP, Packet
        from repro.netsim.shaper import TrafficShaper

        sim = Simulator()
        network = Network(sim)
        a = Host("10.0.0.2", city("san jose"))
        b = Host("10.0.1.2", city("dallas"))
        network.attach(a)
        network.attach(b)
        network.set_uplink_shaper(
            a.address, TrafficShaper(loss=0.999, seed=0)
        )
        b.bind(5000, lambda p: None)
        for _ in range(5):
            a.send(Packet(a.address, b.address, 4000, 5000, IPPROTO_UDP, b"x"))
        sim.run()
        assert network.stats.packets_sent == 5
        assert network.stats.packets_dropped >= 4
        assert (
            network.stats.packets_delivered
            + network.stats.packets_dropped == 5
        )

    def test_host_unbind_reroutes_to_inbox(self):
        from repro.netsim.packet import IPPROTO_UDP, Packet

        sim = Simulator()
        network = Network(sim)
        a = Host("10.0.0.2", city("san jose"))
        b = Host("10.0.1.2", city("dallas"))
        network.attach(a)
        network.attach(b)
        b.bind(5000, lambda p: None)
        b.unbind(5000)
        a.send(Packet(a.address, b.address, 4000, 5000, IPPROTO_UDP, b"x"))
        sim.run()
        assert len(b.inbox) == 1

    def test_detached_host_cannot_send(self):
        host = Host("10.0.0.9", city("dallas"))
        from repro.netsim.packet import IPPROTO_UDP, Packet

        with pytest.raises(RuntimeError, match="not attached"):
            host.send(Packet(host.address, "10.0.0.1", 1, 2, IPPROTO_UDP, b""))

    def test_ap_accessor(self):
        sim = Simulator()
        network = Network(sim)
        a = Host("10.0.0.2", city("san jose"))
        attachment = network.attach(a)
        assert network.ap_of(a.address) is attachment.ap


class TestCalibrationCoherence:
    """Cross-module consistency of the calibrated pipeline."""

    def test_planner_agrees_with_measured_session(self):
        from repro.core.testbed import default_two_user_testbed
        from repro.vca.planner import plan_session
        from repro.devices.models import VisionPro
        from repro.vca.profiles import FACETIME

        plan = plan_session(FACETIME, [VisionPro(), VisionPro()])
        result = default_two_user_testbed().session(FACETIME, seed=0).run(6.0)
        measured_up = result.capture_of("U1").total_bytes(
            Direction.UPLINK
        ) * 8 / 6.0 / 1e6
        assert measured_up == pytest.approx(plan.uplink_mbps, abs=0.1)

    def test_teams_single_server_matches_fleet(self):
        # The profile registry and fleet registry must stay consistent.
        from repro.geo.servers import ALL_FLEETS

        assert len(ALL_FLEETS[TEAMS.name].servers) == \
            calibration.SERVER_COUNTS["Teams"]

    def test_every_profile_has_a_fleet(self):
        from repro.geo.servers import ALL_FLEETS

        assert set(PROFILES) == set(ALL_FLEETS)

    def test_deadline_consistent_with_fps(self):
        from repro.rendering.framerate import vsync_slots

        # A frame exactly at the deadline still fits one slot.
        assert vsync_slots(calibration.FRAME_DEADLINE_MS) == 1
        assert vsync_slots(calibration.FRAME_DEADLINE_MS + 0.01) == 2
