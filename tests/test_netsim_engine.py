"""Discrete-event scheduler semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.netsim.batch import BatchSimulator
from repro.netsim.engine import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(0.3, lambda: order.append("c"))
        sim.schedule(0.1, lambda: order.append("a"))
        sim.schedule(0.2, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion(self):
        sim = Simulator()
        order = []
        sim.schedule(0.1, lambda: order.append(1))
        sim.schedule(0.1, lambda: order.append(2))
        sim.run()
        assert order == [1, 2]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(0.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [0.5]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)

    def test_run_until_leaves_future_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(3.0, lambda: fired.append(3))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.pending_events() == 1
        assert sim.now == 2.0

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.schedule(0.1, lambda: order.append("nested"))

        sim.schedule(0.1, first)
        sim.run()
        assert order == ["first", "nested"]

    def test_not_reentrant(self):
        sim = Simulator()

        def recurse():
            sim.run()

        sim.schedule(0.1, recurse)
        with pytest.raises(RuntimeError):
            sim.run()


class TestPeriodic:
    def test_schedule_every_fires_expected_count(self):
        sim = Simulator()
        ticks = []
        sim.schedule_every(0.1, lambda: ticks.append(sim.now), until=1.0)
        sim.run()
        assert len(ticks) == 10  # 0.0, 0.1, ..., 0.9

    def test_schedule_every_with_start(self):
        sim = Simulator()
        ticks = []
        sim.schedule_every(0.5, lambda: ticks.append(sim.now),
                           start=1.0, until=2.1)
        sim.run()
        assert ticks == [1.0, 1.5, 2.0]

    def test_interval_must_be_positive(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule_every(0.0, lambda: None)

    def test_start_beyond_until_fires_nothing(self):
        sim = Simulator()
        ticks = []
        sim.schedule_every(0.1, lambda: ticks.append(1), start=5.0, until=1.0)
        sim.run()
        assert ticks == []


class TestBatchFacadeParity:
    """The scalar scheduling scenarios, re-run on a batch engine lane.

    Parametrized over cohort sizes: the lane under test shares its
    engine with 0, 3, or 31 other lanes carrying background periodic
    traffic, and must behave exactly like a private scalar simulator.
    """

    @pytest.fixture(params=[1, 4, 32])
    def lane(self, request):
        cohort = request.param
        batch = BatchSimulator(n_lanes=cohort)
        probe = cohort // 2
        for i in range(cohort):  # other lanes are busy, not idle
            if i != probe:
                batch.lane(i).schedule_every(0.07, lambda: None, until=1.0)
        return batch.lane(probe)

    def test_events_run_in_time_order(self, lane):
        order = []
        lane.schedule(0.3, lambda: order.append("c"))
        lane.schedule(0.1, lambda: order.append("a"))
        lane.schedule(0.2, lambda: order.append("b"))
        lane.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion(self, lane):
        order = []
        lane.schedule(0.1, lambda: order.append(1))
        lane.schedule(0.1, lambda: order.append(2))
        lane.run()
        assert order == [1, 2]

    def test_clock_advances_to_event_time(self, lane):
        seen = []
        lane.schedule(0.5, lambda: seen.append(lane.now))
        lane.run()
        assert seen == [0.5]

    def test_negative_delay_rejected(self, lane):
        with pytest.raises(ValueError):
            lane.schedule(-0.1, lambda: None)

    def test_schedule_in_past_rejected(self, lane):
        lane.schedule(1.0, lambda: None)
        lane.run()
        with pytest.raises(ValueError):
            lane.schedule_at(0.5, lambda: None)

    def test_run_until_leaves_future_events(self, lane):
        fired = []
        lane.schedule(1.0, lambda: fired.append(1))
        lane.schedule(3.0, lambda: fired.append(3))
        lane.run(until=2.0)
        assert fired == [1]
        assert lane.pending_events() == 1  # per-lane accounting
        assert lane.now == 2.0

    def test_events_scheduled_during_run_execute(self, lane):
        order = []

        def first():
            order.append("first")
            lane.schedule(0.1, lambda: order.append("nested"))

        lane.schedule(0.1, first)
        lane.run()
        assert order == ["first", "nested"]

    def test_not_reentrant(self, lane):
        lane.schedule(0.1, lambda: lane.run())
        with pytest.raises(RuntimeError):
            lane.run()

    def test_schedule_every_fires_expected_count(self, lane):
        ticks = []
        lane.schedule_every(0.1, lambda: ticks.append(lane.now), until=1.0)
        lane.run()
        assert len(ticks) == 10  # 0.0, 0.1, ..., 0.9

    def test_cancel_prevents_firing(self, lane):
        fired = []
        handle = lane.schedule(0.5, lambda: fired.append(1))
        assert lane.cancel(handle)
        lane.run()
        assert fired == []
        assert lane.events_cancelled == 1


class TestOrderingProperty:
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                              allow_nan=False), min_size=1, max_size=50))
    def test_execution_order_is_sorted(self, delays):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.schedule(d, lambda d=d: fired.append(d))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)
