"""Hosts, the network fabric, shapers, captures, and the SFU."""

import pytest

from repro.geo.regions import city
from repro.netsim.capture import Direction
from repro.netsim.engine import Simulator
from repro.netsim.network import Network
from repro.netsim.node import Host
from repro.netsim.packet import IPPROTO_UDP, Packet
from repro.netsim.sfu import SelectiveForwardingUnit, forwarding_is_linear
from repro.netsim.shaper import TrafficShaper
from repro.netsim.wifi import WiFiAccessPoint


def build_pair(delay_ms=None):
    sim = Simulator()
    network = Network(sim)
    a = Host("10.0.0.2", city("san jose"), name="A")
    b = Host("10.0.1.2", city("washington"), name="B")
    network.attach(a)
    network.attach(b)
    return sim, network, a, b


def packet(a, b, payload=b"hello", port=5000):
    return Packet(a.address, b.address, 4000, port, IPPROTO_UDP, payload)


class TestDelivery:
    def test_packet_arrives_with_core_delay(self):
        sim, network, a, b = build_pair()
        arrivals = []
        b.bind(5000, lambda p: arrivals.append(sim.now))
        a.send(packet(a, b))
        sim.run()
        expected = network.one_way_delay_s(a.address, b.address)
        assert len(arrivals) == 1
        assert arrivals[0] == pytest.approx(expected, rel=0.05)

    def test_unbound_port_goes_to_inbox(self):
        sim, network, a, b = build_pair()
        a.send(packet(a, b, port=9999))
        sim.run()
        assert len(b.inbox) == 1

    def test_unknown_destination_raises(self):
        sim, network, a, b = build_pair()
        bad = Packet(a.address, "203.0.113.1", 1, 2, IPPROTO_UDP, b"")
        with pytest.raises(KeyError):
            a.send(bad)

    def test_wrong_source_rejected(self):
        sim, network, a, b = build_pair()
        spoofed = Packet("203.0.113.1", b.address, 1, 2, IPPROTO_UDP, b"")
        with pytest.raises(ValueError):
            a.send(spoofed)

    def test_duplicate_attach_rejected(self):
        sim, network, a, b = build_pair()
        with pytest.raises(ValueError):
            network.attach(Host(a.address, city("dallas")))

    def test_double_bind_rejected(self):
        sim, network, a, b = build_pair()
        b.bind(5000, lambda p: None)
        with pytest.raises(ValueError):
            b.bind(5000, lambda p: None)

    def test_stats_count_deliveries(self):
        sim, network, a, b = build_pair()
        for _ in range(3):
            a.send(packet(a, b))
        sim.run()
        assert network.stats.packets_sent == 3
        assert network.stats.packets_delivered == 3


class TestShaping:
    def test_delay_shaper_adds_latency(self):
        sim, network, a, b = build_pair()
        network.set_uplink_shaper(a.address, TrafficShaper(delay_ms=200))
        arrivals = []
        b.bind(5000, lambda p: arrivals.append(sim.now))
        a.send(packet(a, b))
        sim.run()
        base = network.one_way_delay_s(a.address, b.address)
        assert arrivals[0] == pytest.approx(base + 0.2, rel=0.05)

    def test_rate_limit_drops_excess(self):
        sim, network, a, b = build_pair()
        shaper = TrafficShaper(rate_bps=8_000, queue_bytes=2000)
        network.set_uplink_shaper(a.address, shaper)
        for _ in range(50):
            a.send(packet(a, b, payload=b"x" * 972))
        sim.run()
        assert shaper.packets_dropped > 0
        assert network.stats.packets_delivered < 50

    def test_loss_shaper_drops_probabilistically(self):
        sim, network, a, b = build_pair()
        shaper = TrafficShaper(loss=0.5, seed=1)
        network.set_downlink_shaper(b.address, shaper)
        for _ in range(200):
            a.send(packet(a, b))
        sim.run()
        assert 40 < shaper.packets_dropped < 160

    def test_offered_rate_tracks_pre_drop_bytes(self):
        sim, network, a, b = build_pair()
        shaper = TrafficShaper(rate_bps=8_000, queue_bytes=2000)
        network.set_uplink_shaper(a.address, shaper)
        for _ in range(10):
            a.send(packet(a, b, payload=b"x" * 972))
        sim.run()
        assert shaper.offered_mbps(1.0) == pytest.approx(10 * 1000 * 8 / 1e6)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TrafficShaper(delay_ms=-1)
        with pytest.raises(ValueError):
            TrafficShaper(loss=1.0)


class TestCapture:
    def test_capture_sees_both_directions(self):
        sim, network, a, b = build_pair()
        cap = network.start_capture(a.address)
        b.bind(5000, lambda p: b.send(p.reply_shell(b"pong")))
        a.send(packet(a, b))
        sim.run()
        assert len(cap.filter(direction=Direction.UPLINK)) == 1
        assert len(cap.filter(direction=Direction.DOWNLINK)) == 1

    def test_capture_filters_by_peer(self):
        sim, network, a, b = build_pair()
        c = Host("10.0.2.2", city("dallas"), name="C")
        network.attach(c)
        cap = network.start_capture(a.address)
        a.send(packet(a, b))
        a.send(Packet(a.address, c.address, 4000, 5000, IPPROTO_UDP, b"x"))
        sim.run()
        assert len(cap.filter(peer=b.address)) == 1

    def test_snap_truncates_payload(self):
        sim, network, a, b = build_pair()
        cap = network.start_capture(a.address)
        a.send(packet(a, b, payload=b"z" * 500))
        sim.run()
        assert len(cap.records[0].snap) == 64

    def test_capture_total_bytes(self):
        sim, network, a, b = build_pair()
        cap = network.start_capture(a.address)
        a.send(packet(a, b, payload=b"x" * 100))
        sim.run()
        assert cap.total_bytes(Direction.UPLINK) == 128


class TestSfu:
    def test_fanout_to_all_others(self):
        sim = Simulator()
        network = Network(sim)
        hosts = []
        received = {i: [] for i in range(3)}
        for i in range(3):
            h = Host(f"10.0.{i}.2", city("dallas"), name=f"U{i}")
            network.attach(h)
            h.bind(5000, lambda p, i=i: received[i].append(p))
            hosts.append(h)
        sfu = SelectiveForwardingUnit("192.0.2.1", city("chicago"))
        network.attach(sfu)
        for h in hosts:
            sfu.register(h.address, 5000)
        hosts[0].send(Packet(
            hosts[0].address, sfu.address, 5000,
            SelectiveForwardingUnit.MEDIA_PORT, IPPROTO_UDP, b"media",
        ))
        sim.run()
        assert len(received[0]) == 0  # never echoed to the sender
        assert len(received[1]) == 1
        assert len(received[2]) == 1
        assert received[1][0].meta["origin"] == hosts[0].address

    def test_unregister_stops_forwarding(self):
        sim = Simulator()
        network = Network(sim)
        a = Host("10.0.0.2", city("dallas"))
        b = Host("10.0.1.2", city("chicago"))
        network.attach(a)
        network.attach(b)
        sfu = SelectiveForwardingUnit("192.0.2.1", city("chicago"))
        network.attach(sfu)
        sfu.register(a.address, 5000)
        sfu.register(b.address, 5000)
        sfu.unregister(b.address)
        a.send(Packet(a.address, sfu.address, 5000,
                      SelectiveForwardingUnit.MEDIA_PORT, IPPROTO_UDP, b"m"))
        sim.run()
        assert b.inbox == []

    def test_linear_forwarding_formula(self):
        assert forwarding_is_linear(5, 1e6) == pytest.approx(4e6)
        with pytest.raises(ValueError):
            forwarding_is_linear(0, 1e6)


class TestWifi:
    def test_ap_rate_validation(self):
        with pytest.raises(ValueError):
            WiFiAccessPoint(throughput_mbps=0)

    def test_default_rate_matches_testbed(self):
        ap = WiFiAccessPoint()
        assert ap.uplink.rate_bps == pytest.approx(300e6)
