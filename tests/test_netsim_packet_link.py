"""Packets and the link model."""

import pytest
from hypothesis import given, strategies as st

from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.netsim.packet import (
    IPPROTO_TCP,
    IPPROTO_UDP,
    IPV4_HEADER_BYTES,
    TCP_HEADER_BYTES,
    UDP_HEADER_BYTES,
    Packet,
)


def make_packet(payload=b"x" * 100, protocol=IPPROTO_UDP):
    return Packet("10.0.0.1", "10.0.0.2", 1000, 2000, protocol, payload)


class TestPacket:
    def test_udp_wire_size(self):
        p = make_packet(b"x" * 100)
        assert p.wire_bytes == IPV4_HEADER_BYTES + UDP_HEADER_BYTES + 100

    def test_tcp_wire_size(self):
        p = make_packet(b"x" * 100, protocol=IPPROTO_TCP)
        assert p.wire_bytes == IPV4_HEADER_BYTES + TCP_HEADER_BYTES + 100

    def test_bad_protocol_rejected(self):
        with pytest.raises(ValueError):
            Packet("a", "b", 1, 2, 99, b"")

    def test_bad_port_rejected(self):
        with pytest.raises(ValueError):
            Packet("a", "b", 0, 2, IPPROTO_UDP, b"")
        with pytest.raises(ValueError):
            Packet("a", "b", 1, 70000, IPPROTO_UDP, b"")

    def test_reply_shell_swaps_endpoints(self):
        p = make_packet()
        r = p.reply_shell(b"pong")
        assert (r.src, r.dst) == (p.dst, p.src)
        assert (r.src_port, r.dst_port) == (p.dst_port, p.src_port)
        assert r.payload == b"pong"

    def test_forward_preserves_payload_and_meta(self):
        p = make_packet()
        p.meta["frame"] = 7
        f = p.forward_to("10.0.0.3", 3000, "10.0.0.9", 3478)
        assert f.payload == p.payload
        assert f.meta["frame"] == 7
        assert f.dst == "10.0.0.3"

    def test_packet_ids_unique(self):
        assert make_packet().packet_id != make_packet().packet_id


class TestLink:
    def test_serialization_delay(self):
        link = Link(rate_bps=8e6)
        p = make_packet(b"x" * 972)  # 1000 wire bytes
        assert link.serialization_delay(p) == pytest.approx(0.001)

    def test_transmit_schedules_completion(self):
        sim = Simulator()
        link = Link(rate_bps=8e6)
        done = []
        link.transmit(sim, make_packet(b"x" * 972), lambda p: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(0.001)]

    def test_queueing_serializes_back_to_back(self):
        sim = Simulator()
        link = Link(rate_bps=8e6)
        times = []
        for _ in range(3):
            link.transmit(sim, make_packet(b"x" * 972), lambda p: times.append(sim.now))
        sim.run()
        assert times == [pytest.approx(0.001), pytest.approx(0.002),
                         pytest.approx(0.003)]

    def test_drop_tail_when_queue_full(self):
        sim = Simulator()
        link = Link(rate_bps=1e4, queue_bytes=2000)  # slow + tiny queue
        accepted = [
            link.transmit(sim, make_packet(b"x" * 972), lambda p: None)
            for _ in range(5)
        ]
        assert accepted[0] is True
        assert not all(accepted)
        assert link.stats.packets_dropped >= 1
        assert link.stats.drop_rate > 0

    def test_extra_delay_applied_after_serialization(self):
        sim = Simulator()
        link = Link(rate_bps=8e6)
        times = []
        link.transmit(sim, make_packet(b"x" * 972),
                      lambda p: times.append(sim.now), extra_delay=0.05)
        sim.run()
        assert times == [pytest.approx(0.051)]

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Link(rate_bps=0)

    def test_utilization_bounded(self):
        sim = Simulator()
        link = Link(rate_bps=8e6)
        link.transmit(sim, make_packet(), lambda p: None)
        sim.run()
        assert 0.0 <= link.utilization(max(sim.now, 1e-6)) <= 1.0


class TestWireSizeProperty:
    @given(st.binary(min_size=0, max_size=2000))
    def test_wire_size_monotone_in_payload(self, payload):
        p = make_packet(payload)
        assert p.wire_bytes == 28 + len(payload)
