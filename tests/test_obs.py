"""Observability layer: metrics registry, tracing spans, instrumentation.

Covers the :mod:`repro.obs` package itself (counters/gauges/histograms,
snapshot/delta/merge algebra, span emission and the JSONL round-trip) and
the integration contract: a traced campaign emits parseable, properly
nested spans carrying both wall and simulated durations, and its manifest
records a per-cell metrics snapshot — on the serial and pool paths alike.
"""

from __future__ import annotations

import json

import pytest

from repro.core.campaign import Campaign
from repro.core.journal import RunManifest
from repro.netsim.engine import Simulator
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.metrics import Registry, delta, format_snapshot


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    """Tracing is process-global state; never leak it across tests."""
    obs_trace.shutdown()
    yield
    obs_trace.shutdown()


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------


def test_counter_gauge_histogram_basics():
    reg = Registry()
    reg.counter("c").inc()
    reg.counter("c").inc(4)
    reg.gauge("g").set(2.0)
    reg.gauge("g").set_max(7.0)
    reg.gauge("g").set_max(3.0)  # lower: must not win
    hist = reg.histogram("h")
    for value in (1.0, 2.0, 6.0):
        hist.observe(value)
    snap = reg.snapshot()
    assert snap["counters"]["c"] == 5
    assert snap["gauges"]["g"] == 7.0
    assert snap["histograms"]["h"]["count"] == 3
    assert snap["histograms"]["h"]["sum"] == pytest.approx(9.0)
    assert snap["histograms"]["h"]["min"] == 1.0
    assert snap["histograms"]["h"]["max"] == 6.0
    assert hist.mean == pytest.approx(3.0)


def test_instruments_are_get_or_create():
    reg = Registry()
    assert reg.counter("x") is reg.counter("x")
    assert reg.gauge("y") is reg.gauge("y")
    assert reg.histogram("z") is reg.histogram("z")


def test_registry_reset_clears_values():
    reg = Registry()
    reg.counter("c").inc(3)
    reg.reset()
    assert reg.snapshot()["counters"].get("c", 0) == 0


def test_delta_reports_only_moved_instruments():
    reg = Registry()
    reg.counter("stays").inc(10)
    reg.histogram("h").observe(1.0)
    before = reg.snapshot()
    reg.counter("moves").inc(2)
    reg.gauge("g").set(5.0)
    reg.histogram("h").observe(3.0)
    moved = delta(before, reg.snapshot())
    assert moved["counters"] == {"moves": 2}
    assert moved["gauges"] == {"g": 5.0}
    assert moved["histograms"]["h"]["count"] == 1
    assert moved["histograms"]["h"]["sum"] == pytest.approx(3.0)
    assert "stays" not in moved["counters"]


def test_merge_adds_counters_and_maxes_gauges():
    reg = Registry()
    reg.counter("c").inc(1)
    reg.gauge("hw").set(10.0)
    reg.histogram("h").observe(2.0)
    reg.merge({
        "counters": {"c": 4, "new": 2},
        "gauges": {"hw": 3.0},          # lower than ours: ours wins
        "histograms": {"h": {"count": 2, "sum": 8.0, "min": 1.0,
                             "max": 7.0}},
    })
    snap = reg.snapshot()
    assert snap["counters"]["c"] == 5
    assert snap["counters"]["new"] == 2
    assert snap["gauges"]["hw"] == 10.0
    assert snap["histograms"]["h"]["count"] == 3
    assert snap["histograms"]["h"]["min"] == 1.0
    assert snap["histograms"]["h"]["max"] == 7.0


def test_format_snapshot_renders_rows_and_titles():
    reg = Registry()
    reg.counter("events").inc(12)
    text = format_snapshot(reg.snapshot())
    assert "metrics:" in text and "events" in text and "12" in text
    untitled = format_snapshot(reg.snapshot(), title=None)
    assert "metrics:" not in untitled and "events" in untitled
    assert "no instruments" in format_snapshot(Registry().snapshot())


# ----------------------------------------------------------------------
# spans and the JSONL round-trip
# ----------------------------------------------------------------------


def test_span_is_free_noop_while_disabled(tmp_path):
    assert obs_trace.current_tracer() is None
    with obs_trace.span("anything", answer=42) as s:
        s.set(more=1)  # must not raise
    assert list(tmp_path.iterdir()) == []


def test_span_jsonl_round_trip(tmp_path):
    path = tmp_path / "trace.jsonl"
    obs_trace.configure(path)
    with obs_trace.span("outer", cat="test", level=1):
        with obs_trace.span("inner", cat="test"):
            pass
    obs_trace.shutdown()
    events = obs_trace.read_trace(path)
    assert [e["name"] for e in events] == ["inner", "outer"]  # exit order
    for event in events:
        assert event["ph"] == "X"
        assert event["cat"] == "test"
        assert event["dur"] >= 0 and event["ts"] > 0
    inner, outer = events
    assert inner["args"]["parent"] == outer["args"]["id"]
    assert outer["args"]["level"] == 1
    assert obs_trace.validate_nesting(events) == []


def test_span_records_sim_clock_durations(tmp_path):
    path = tmp_path / "trace.jsonl"
    obs_trace.configure(path)
    sim = Simulator()
    sim.schedule_at(1.5, lambda: None)
    with obs_trace.span("sim.run", sim_clock=lambda: sim.now):
        sim.run()
    obs_trace.shutdown()
    (event,) = obs_trace.read_trace(path)
    assert event["args"]["sim_t0_s"] == 0.0
    assert event["args"]["sim_dur_s"] == pytest.approx(1.5)


def test_span_records_error_class(tmp_path):
    path = tmp_path / "trace.jsonl"
    obs_trace.configure(path)
    with pytest.raises(RuntimeError):
        with obs_trace.span("boom"):
            raise RuntimeError("no")
    obs_trace.shutdown()
    (event,) = obs_trace.read_trace(path)
    assert event["args"]["error"] == "RuntimeError"


def test_configure_is_idempotent_per_path(tmp_path):
    path = tmp_path / "trace.jsonl"
    tracer = obs_trace.configure(path)
    assert obs_trace.configure(path) is tracer
    assert obs_trace.trace_path() == str(path)


def test_read_trace_rejects_garbage(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"ok": 1}\nnot json at all\n')
    with pytest.raises(ValueError, match="not JSON"):
        obs_trace.read_trace(path)


def test_validate_nesting_flags_partial_overlap():
    events = [
        {"name": "a", "ph": "X", "pid": 1, "tid": 1, "ts": 0.0,
         "dur": 10.0, "args": {}},
        {"name": "b", "ph": "X", "pid": 1, "tid": 1, "ts": 5.0,
         "dur": 10.0, "args": {}},
    ]
    problems = obs_trace.validate_nesting(events)
    assert problems and "overlaps" in problems[0]


def test_validate_nesting_flags_escaped_child():
    events = [
        {"name": "parent", "ph": "X", "pid": 1, "tid": 1, "ts": 0.0,
         "dur": 5.0, "args": {"id": "1:1"}},
        {"name": "child", "ph": "X", "pid": 1, "tid": 2, "ts": 4.0,
         "dur": 8.0, "args": {"id": "1:2", "parent": "1:1"}},
    ]
    problems = obs_trace.validate_nesting(events)
    assert problems and "not inside" in problems[0]


def test_chrome_export_wraps_trace_events(tmp_path):
    src = tmp_path / "trace.jsonl"
    obs_trace.configure(src)
    with obs_trace.span("one"):
        pass
    obs_trace.shutdown()
    dst = tmp_path / "trace.json"
    assert obs_trace.chrome_export(src, dst) == 1
    doc = json.loads(dst.read_text())
    assert [e["name"] for e in doc["traceEvents"]] == ["one"]


# ----------------------------------------------------------------------
# engine instrumentation
# ----------------------------------------------------------------------


def test_simulator_probe_sees_every_edge():
    sim = Simulator()
    edges = []
    sim.on_event = lambda kind, t, handle: edges.append((kind, t))
    handle = sim.schedule_at(2.0, lambda: None)
    sim.schedule_at(1.0, lambda: None)
    sim.cancel(handle)
    sim.run()
    assert edges == [("schedule", 2.0), ("schedule", 1.0),
                     ("cancel", 2.0), ("fire", 1.0)]


def test_simulator_stats_counters():
    sim = Simulator()
    handles = [sim.schedule_at(float(i), lambda: None) for i in range(5)]
    sim.cancel(handles[3])
    sim.run()
    stats = sim.stats()
    assert stats["events_scheduled"] == 5
    assert stats["events_fired"] == 4
    assert stats["events_cancelled"] == 1
    assert stats["queue_high_water"] == 5
    assert stats["sim_time_s"] == 4.0


def test_simulator_publishes_metrics_once_per_run():
    before = obs_metrics.snapshot()
    sim = Simulator()
    sim.schedule_at(3.0, lambda: None)
    sim.run()
    sim.run()  # second run: nothing new moved, nothing double-counted
    moved = delta(before, obs_metrics.snapshot())
    assert moved["counters"]["netsim.events_scheduled"] == 1
    assert moved["counters"]["netsim.events_fired"] == 1
    assert moved["counters"]["netsim.sim_time_s"] == pytest.approx(3.0)


# ----------------------------------------------------------------------
# integration: traced campaign, serial and pool
# ----------------------------------------------------------------------


def _grid() -> Campaign:
    return Campaign.grid(["FaceTime"], [2], duration_s=2.0, repeats=2)


@pytest.mark.parametrize("jobs", [1, 2])
def test_traced_campaign_emits_nested_spans_and_cell_metrics(tmp_path, jobs):
    # Forget instruments accumulated by earlier tests: the high-water
    # gauge only lands in a cell's delta when the cell moves it, which a
    # previous sweep in this process (or a forked worker's inherited
    # registry) would mask.
    obs_metrics.REGISTRY.reset()
    obs_trace.configure(tmp_path / "trace.jsonl")
    manifest = RunManifest()
    campaign = _grid()
    campaign.run(jobs=jobs, manifest=manifest)
    obs_trace.shutdown()

    events = obs_trace.read_trace(tmp_path / "trace.jsonl")
    names = [e["name"] for e in events]
    assert "campaign.run" in names and "runner.run" in names
    assert sum(1 for n in names if n.startswith("cell.")) == 2
    assert sum(1 for n in names if n == "vca.session.run") == 2
    assert obs_trace.validate_nesting(events) == []
    for event in events:
        if event["name"].startswith(("cell.", "vca.session.")):
            assert event["args"]["sim_dur_s"] == pytest.approx(2.0)
        assert event["dur"] > 0

    assert len(campaign.records) == 2
    for cell in manifest.cells:
        assert cell.sim_time_s == pytest.approx(2.0)
        assert cell.metrics is not None
        counters = cell.metrics["counters"]
        assert counters["netsim.sim_time_s"] == pytest.approx(2.0)
        assert counters["vca.sessions_run"] == 1
        assert any(name.startswith("vca.rx.packets.") for name in counters)
    # With the registry freshly reset, the first cell on either path
    # must move (and therefore record) the queue high-water gauge.
    assert any(
        (c.metrics["gauges"].get("netsim.queue_high_water") or 0) > 0
        for c in manifest.cells
    )


def test_pool_run_merges_worker_metrics_into_parent_registry():
    before = obs_metrics.snapshot()
    _grid().run(jobs=2)
    moved = delta(before, obs_metrics.snapshot())
    # Two sessions ran in worker processes; their counters must still
    # land in the parent registry (shipped back with each result).
    assert moved["counters"]["vca.sessions_run"] == 2
    assert moved["counters"]["netsim.sim_time_s"] == pytest.approx(4.0)


def test_manifest_round_trips_cell_metrics(tmp_path):
    manifest = RunManifest()
    _grid().run(jobs=1, manifest=manifest)
    path = tmp_path / "manifest.json"
    manifest.write(path)
    loaded = RunManifest.read(path)
    assert loaded.total_sim_time_s() == pytest.approx(4.0)
    for cell in loaded.cells:
        assert cell.metrics["counters"]["vca.sessions_run"] == 1
