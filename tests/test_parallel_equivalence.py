"""Golden equivalence: serial, parallel, and cache-replayed sweeps match.

The parallel runner and the result cache are only admissible because they
are invisible in the output: for the same seeds, `Campaign.run(jobs=8)`
and a cache replay must export **byte-identical** CSVs to the historical
serial loop.  These tests pin that contract on a grid covering all four
VCA profiles, and exercise the runner's crash-isolation path.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core.cache import ResultCache
from repro.core.campaign import Campaign, CampaignRecord
from repro.core.parallel import CellTask, TaskRunner, run_tasks

#: Every VCA profile, three user counts — FaceTime's spatial cap keeps
#: all of them legal (cap is five).
GRID = dict(
    vcas=("FaceTime", "Zoom", "Webex", "Teams"),
    user_counts=(2, 3),
    duration_s=3.0,
    repeats=1,
)


def _campaign() -> Campaign:
    return Campaign.grid(**GRID, base_seed=7)


def _csv_bytes(campaign: Campaign, path: Path) -> bytes:
    campaign.to_csv(path)
    return path.read_bytes()


@pytest.fixture(scope="module")
def serial_csv(tmp_path_factory) -> bytes:
    """The golden export: the serial path, no cache."""
    campaign = _campaign()
    campaign.run(jobs=1)
    return _csv_bytes(campaign, tmp_path_factory.mktemp("serial") / "c.csv")


class TestCampaignEquivalence:
    def test_parallel1_identical_to_serial(self, serial_csv, tmp_path):
        campaign = _campaign()
        campaign.run(jobs=1, cache=None)
        assert _csv_bytes(campaign, tmp_path / "p1.csv") == serial_csv

    def test_parallel8_identical_to_serial(self, serial_csv, tmp_path):
        campaign = _campaign()
        campaign.run(jobs=8)
        assert _csv_bytes(campaign, tmp_path / "p8.csv") == serial_csv
        assert campaign.last_run_stats.executed == len(campaign.tasks())

    def test_cache_replay_identical_after_disk_roundtrip(
        self, serial_csv, tmp_path
    ):
        root = tmp_path / "cache"
        cold = _campaign()
        cold.run(jobs=8, cache=ResultCache(root))
        assert _csv_bytes(cold, tmp_path / "cold.csv") == serial_csv
        # A fresh campaign + fresh cache object: every record must come
        # back off disk, and the export must not move by a byte.
        warm = _campaign()
        warm.run(jobs=1, cache=ResultCache(root))
        assert _csv_bytes(warm, tmp_path / "warm.csv") == serial_csv
        stats = warm.last_run_stats
        assert stats.cache_hits == stats.tasks
        assert stats.executed == 0
        assert stats.hit_rate() >= 0.95

    def test_seed_allocation_matches_serial_order(self, serial_csv):
        campaign = _campaign()
        records = campaign.run(jobs=8)
        expected = list(range(7, 7 + len(records)))
        assert [r.seed for r in records] == expected

    def test_records_are_records(self, serial_csv):
        campaign = _campaign()
        for record in campaign.run(jobs=2):
            assert isinstance(record, CampaignRecord)


# ---------------------------------------------------------------------------
# Runner behaviour that the campaign path doesn't reach
# ---------------------------------------------------------------------------

def _touch_or_crash(sentinel: str, value: int) -> int:
    """Crashes the worker on first call, succeeds on retry."""
    path = Path(sentinel)
    if not path.exists():
        path.write_text("crashed once")
        os._exit(13)  # hard kill: simulates a segfaulting worker
    return value * 2


def _double(value: int) -> int:
    return value * 2


def _boom(value: int) -> int:
    raise RuntimeError(f"cell {value} is deterministically broken")


class TestTaskRunner:
    def test_results_come_back_in_task_order(self):
        tasks = [CellTask(name=f"t{i}", fn=_double, kwargs={"value": i})
                 for i in range(6)]
        assert run_tasks(tasks, jobs=3) == [0, 2, 4, 6, 8, 10]

    def test_worker_crash_is_isolated_and_retried(self, tmp_path):
        sentinel = tmp_path / "crash-once"
        tasks = [
            CellTask(name="survivor", fn=_double, kwargs={"value": 21}),
            CellTask(name="crasher", fn=_touch_or_crash,
                     kwargs={"sentinel": str(sentinel), "value": 21}),
        ]
        runner = TaskRunner(jobs=2, retries=2)
        assert runner.run(tasks) == [42, 42]
        assert runner.stats.retries >= 1

    def test_task_exception_propagates(self):
        tasks = [CellTask(name="boom", fn=_boom, kwargs={"value": 1})]
        with pytest.raises(RuntimeError, match="deterministically broken"):
            run_tasks(tasks, jobs=2)
        with pytest.raises(RuntimeError, match="deterministically broken"):
            run_tasks(tasks, jobs=1)

    def test_lambda_task_rejected(self):
        with pytest.raises(ValueError, match="module-level"):
            CellTask(name="bad", fn=lambda: 1)

    def test_non_callable_rejected(self):
        with pytest.raises(TypeError):
            CellTask(name="bad", fn=42)

    def test_invalid_runner_params(self):
        with pytest.raises(ValueError):
            TaskRunner(jobs=-1)
        with pytest.raises(ValueError):
            TaskRunner(retries=-1)

    def test_progress_reports_cached_and_executed(self, tmp_path):
        cache = ResultCache(tmp_path)
        tasks = [CellTask(name=f"t{i}", fn=_double, kwargs={"value": i})
                 for i in range(3)]
        run_tasks(tasks, cache=cache)
        seen: list = []
        run_tasks(tasks, cache=ResultCache(tmp_path), progress=seen.append)
        assert seen == ["t0 [cached]", "t1 [cached]", "t2 [cached]"]
