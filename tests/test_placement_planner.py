"""Server-placement optimization and the session feasibility planner."""

import pytest

from repro import calibration
from repro.devices.models import MacBook, VisionPro
from repro.geo.placement import (
    assess_fleet,
    candidate_sites,
    mean_rtt_ms,
    optimize_placement,
)
from repro.geo.regions import all_clients, city
from repro.geo.servers import ALL_FLEETS
from repro.vca.planner import (
    check_feasibility,
    max_users_for_capacity,
    plan_session,
)
from repro.vca.profiles import FACETIME, PersonaKind, WEBEX, ZOOM


class TestPlacementOptimizer:
    def test_candidate_grid_covers_the_us(self):
        sites = candidate_sites()
        assert len(sites) > 100
        lats = [s.lat for s in sites]
        lons = [s.lon for s in sites]
        assert min(lats) < 30 and max(lats) > 45
        assert min(lons) < -120 and max(lons) > -75

    def test_more_servers_never_hurt(self):
        one = optimize_placement(1)
        three = optimize_placement(3)
        assert three.mean_rtt_ms <= one.mean_rtt_ms

    def test_single_server_lands_centrally(self):
        placement = optimize_placement(1)
        server = placement.servers[0]
        # The 1-median of the eight vantage cities is mid-continent.
        assert -105 < server.lon < -85

    def test_mean_rtt_validation(self):
        with pytest.raises(ValueError):
            mean_rtt_ms([], all_clients())

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            optimize_placement(0)

    def test_optimal_lower_bounds_observed(self):
        for vca in ("FaceTime", "Zoom", "Webex", "Teams"):
            assessment = assess_fleet(ALL_FLEETS[vca])
            assert assessment.optimal_mean_rtt_ms <= \
                assessment.observed_mean_rtt_ms + 1e-6
            assert 0.0 < assessment.efficiency <= 1.0 + 1e-9

    def test_facetime_fleet_near_optimal(self):
        # Four well-spread servers leave little on the table.
        assessment = assess_fleet(ALL_FLEETS["FaceTime"])
        assert assessment.efficiency > 0.8

    def test_teams_single_server_clearly_suboptimal(self):
        # The paper's Table 1 Teams column shows the cost of one West
        # Coast server; the optimizer quantifies it.
        assessment = assess_fleet(ALL_FLEETS["Teams"])
        assert assessment.efficiency < 0.8


class TestSessionPlanner:
    def test_spatial_plan_uses_semantic_rates(self):
        plan = plan_session(FACETIME, [VisionPro()] * 3)
        assert plan.persona_kind is PersonaKind.SPATIAL
        assert plan.uplink_mbps == pytest.approx(
            calibration.SPATIAL_PERSONA_MBPS
        )
        assert plan.downlink_mbps == pytest.approx(
            2 * calibration.SPATIAL_PERSONA_MBPS
        )

    def test_2d_plan_uses_profile_rates(self):
        plan = plan_session(WEBEX, [VisionPro()] * 4)
        assert plan.uplink_mbps == pytest.approx(4.3)
        assert plan.downlink_mbps == pytest.approx(3 * 4.3)

    def test_spatial_floor_is_the_cutoff(self):
        plan = plan_session(FACETIME, [VisionPro(), VisionPro()])
        assert plan.uplink_floor_mbps == pytest.approx(0.7)

    def test_over_cap_rejected(self):
        with pytest.raises(ValueError, match="caps"):
            plan_session(FACETIME, [VisionPro()] * 6)

    def test_mixed_devices_fall_back_to_2d(self):
        plan = plan_session(FACETIME, [VisionPro(), MacBook()])
        assert plan.persona_kind is PersonaKind.TWO_D

    def test_feasibility_identifies_limit(self):
        verdict = check_feasibility(WEBEX, [VisionPro()] * 8, 10.0, 20.0)
        assert not verdict.feasible
        assert verdict.limiting_direction == "downlink"
        assert "NOT fit" in verdict.explanation()

    def test_feasible_session(self):
        verdict = check_feasibility(
            FACETIME, [VisionPro()] * 5, 10.0, 10.0
        )
        assert verdict.feasible
        assert verdict.limiting_direction is None

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            check_feasibility(ZOOM, [VisionPro()] * 2, 0.0, 10.0)

    def test_max_users_spatial_hits_the_cap(self):
        # Bandwidth would allow more; the persona cap stops at 5.
        assert max_users_for_capacity(FACETIME, VisionPro, 50.0, 50.0) == 5

    def test_max_users_limited_by_downlink(self):
        # Webex: each extra user adds ~4.3 Mbps of downlink.
        n = max_users_for_capacity(WEBEX, VisionPro, 10.0, 20.0)
        assert n == 4  # 3 remote streams * 4.3 = 12.9 < 17; 4 * 4.3 > 17

    def test_max_users_zero_when_uplink_too_small(self):
        assert max_users_for_capacity(WEBEX, VisionPro, 2.0, 100.0) == 0
