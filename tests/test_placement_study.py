"""The placement-study campaign driver and its CLI subcommand."""

import pytest

from repro.core.cache import ResultCache
from repro.core.journal import RunJournal, RunManifest
from repro.experiments import placement_study
from repro.experiments.placement_study import (
    PlacementStudyResult,
    evaluate_cell,
)

# Small-but-real settings: coarse lattice, few users, two ks.
FAST = dict(users=2000, seed=0, site_step_deg=12.0)


class TestEvaluateCell:
    def test_record_shape_and_ranges(self):
        record = evaluate_cell("initiator-nearest", k=3, **FAST)
        assert record["policy"] == "initiator-nearest"
        assert record["k"] == 3
        assert 0.0 < record["qoe_mean"] <= 1.0
        assert 0.0 <= record["meets_threshold_fraction"] <= 1.0
        assert record["cost_units"] == 3.0  # single relay => no backbone
        assert record["multi_relay_fraction"] == 0.0
        assert len(record["placed_sites"]) == 3
        assert len(record["per_epoch"]) == 4

    def test_deterministic(self):
        a = evaluate_cell("client-nearest", k=2, **FAST)
        b = evaluate_cell("client-nearest", k=2, **FAST)
        assert a == b

    def test_client_nearest_beats_initiator_nearest(self):
        """The paper's Sec. 4.1 remedy, restated over global demand."""
        observed = evaluate_cell("initiator-nearest", k=4, **FAST)
        remedy = evaluate_cell("client-nearest", k=4, **FAST)
        assert remedy["qoe_mean"] > observed["qoe_mean"]
        assert remedy["multi_relay_fraction"] > 0.0
        # ...and pays for the backbone interconnect
        assert remedy["cost_units"] > observed["cost_units"]

    def test_json_safe_record(self):
        import json

        record = evaluate_cell("latency-budget", k=2, **FAST)
        assert json.loads(json.dumps(record)) == record

    def test_validation(self):
        with pytest.raises(ValueError, match="users"):
            evaluate_cell("client-nearest", k=2, users=2, seed=0)
        with pytest.raises(ValueError, match="two participants"):
            evaluate_cell("client-nearest", k=2, users=100, seed=0,
                          session_size=1)
        with pytest.raises(KeyError, match="unknown policy"):
            evaluate_cell("warp-drive", k=2, **FAST)


class TestRun:
    POLICIES = ["initiator-nearest", "client-nearest"]

    def test_sweep_covers_the_grid(self):
        result = placement_study.run(policies=self.POLICIES,
                                     k_range=[2, 4], **FAST)
        assert len(result.records) == 4
        assert result.policies() == self.POLICIES
        assert result.k_values() == [2, 4]

    def test_unknown_policy_fails_fast(self):
        with pytest.raises(KeyError, match="unknown policy"):
            placement_study.run(policies=["nope"], k_range=[2], **FAST)

    def test_bad_k_range(self):
        with pytest.raises(ValueError, match="k_range"):
            placement_study.run(policies=self.POLICIES, k_range=[0], **FAST)

    def test_cache_round_trip_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = placement_study.run(policies=self.POLICIES, k_range=[2],
                                   cache=cache, **FAST)
        warm = placement_study.run(policies=self.POLICIES, k_range=[2],
                                   cache=cache, **FAST)
        assert cold.records == warm.records

    def test_resume_from_journal(self, tmp_path):
        journal_path = tmp_path / "study.journal"
        with RunJournal(journal_path) as journal:
            full = placement_study.run(policies=self.POLICIES, k_range=[2],
                                       journal=journal, **FAST)
        manifest = RunManifest()
        with RunJournal(journal_path) as journal:
            resumed = placement_study.run(policies=self.POLICIES,
                                          k_range=[2], journal=journal,
                                          resume=True, manifest=manifest,
                                          **FAST)
        assert resumed.records == full.records
        assert all(cell.status == "resumed" for cell in manifest.cells)

    def test_parallel_matches_serial(self, tmp_path):
        serial = placement_study.run(policies=self.POLICIES, k_range=[2],
                                     jobs=1, **FAST)
        parallel = placement_study.run(policies=self.POLICIES, k_range=[2],
                                       jobs=2, **FAST)
        assert serial.records == parallel.records


class TestResultAccessors:
    @pytest.fixture(scope="class")
    def result(self):
        return placement_study.run(
            policies=["initiator-nearest", "client-nearest"],
            k_range=[2, 4], **FAST)

    def test_best_maximizes_objective(self, result):
        best = result.best()
        assert best["objective"] == max(r["objective"]
                                        for r in result.records)

    def test_initiator_penalty_positive(self, result):
        assert result.initiator_penalty() > 0.0
        assert result.initiator_penalty(2) == pytest.approx(
            result.record("client-nearest", 2)["qoe_mean"]
            - result.record("initiator-nearest", 2)["qoe_mean"])

    def test_missing_record_raises(self, result):
        with pytest.raises(KeyError, match="no record"):
            result.record("load-aware", 2)

    def test_format_table(self, result):
        table = result.format_table()
        assert "initiator-nearest" in table
        assert "k=4" in table

    def test_format_table_sparse_grid(self):
        sparse = PlacementStudyResult(records=[
            {"policy": "a", "k": 2, "qoe_mean": 0.9, "objective": 0.88},
            {"policy": "b", "k": 4, "qoe_mean": 0.5, "objective": 0.4},
        ])
        # the (a, k=4) and (b, k=2) cells were never run: placeholder,
        # not a KeyError
        assert "--" in sparse.format_table()

    def test_to_csv(self, result, tmp_path):
        path = tmp_path / "cells.csv"
        result.to_csv(path)
        lines = path.read_text().splitlines()
        assert lines[0].startswith("policy,k,users")
        assert len(lines) == 1 + len(result.records)


class TestCli:
    def test_placement_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        csv_path = tmp_path / "out.csv"
        code = main([
            "placement", "--users", "2000",
            "--policies", "initiator-nearest,client-nearest",
            "--k-range", "2", "--site-step", "12",
            "--no-cache", "--csv", str(csv_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "initiator-nearest" in out
        assert "best objective:" in out
        assert "QoE penalty" in out
        assert csv_path.exists()

    def test_resume_requires_journal(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="--resume needs --journal"):
            main(["placement", "--resume", "--no-cache"])

    def test_comma_and_space_policy_lists_agree(self):
        from repro.cli import build_parser

        by_comma = build_parser().parse_args(
            ["placement", "--policies", "initiator-nearest,client-nearest"])
        by_space = build_parser().parse_args(
            ["placement", "--policies", "initiator-nearest",
             "client-nearest"])
        split = [name for entry in by_comma.policies
                 for name in entry.split(",") if name]
        assert split == by_space.policies


class TestTelemetry:
    def test_cell_increments_obs_counters(self):
        from repro.obs import metrics as obs_metrics

        before = obs_metrics.counter("geo.study.cells").value
        evaluate_cell("initiator-nearest", k=2, **FAST)
        assert obs_metrics.counter("geo.study.cells").value == before + 1
        assert obs_metrics.counter("geo.placement.rounds").value > 0

    def test_sessions_scored_matches_record(self):
        from repro.obs import metrics as obs_metrics

        before = obs_metrics.counter("geo.study.sessions_scored").value
        record = evaluate_cell("client-nearest", k=2, **FAST)
        delta = (obs_metrics.counter("geo.study.sessions_scored").value
                 - before)
        assert delta == record["sessions"]
