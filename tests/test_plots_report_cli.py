"""ASCII plots, the report generator, and the CLI."""

import pytest

from repro.analysis.plots import box_plot, render_box, sparkline
from repro.analysis.stats import summarize_samples
from repro.cli import build_parser, main


@pytest.fixture()
def stats():
    return summarize_samples([1.0, 2.0, 2.5, 3.0, 3.5, 4.0, 9.0])


class TestRenderBox:
    def test_width_respected(self, stats):
        assert len(render_box(stats, 0.0, 10.0, width=40)) == 40

    def test_contains_box_glyphs(self, stats):
        row = render_box(stats, 0.0, 10.0)
        assert "[" in row and "]" in row and "|" in row

    def test_mean_marker_when_not_occluded(self):
        # Mean well inside the box, away from corners and median.
        wide = summarize_samples([0.0, 0.0, 0.0, 0.0, 6.0, 10.0, 10.0])
        row = render_box(wide, 0.0, 10.0, width=50)
        assert "*" in row

    def test_structural_glyphs_win_collisions(self, stats):
        # This sample's mean lands on the p75 corner; the corner must
        # survive (the mean is printed as text by box_plot).
        row = render_box(stats, 0.0, 10.0)
        assert "]" in row

    def test_invalid_range(self, stats):
        with pytest.raises(ValueError):
            render_box(stats, 5.0, 5.0)

    def test_tiny_width_rejected(self, stats):
        with pytest.raises(ValueError):
            render_box(stats, 0.0, 1.0, width=5)


class TestBoxPlot:
    def test_multi_series_shared_scale(self, stats):
        other = summarize_samples([10.0, 12.0, 14.0])
        art = box_plot({"a": stats, "b": other})
        lines = art.splitlines()
        assert len(lines) == 3  # two rows + axis
        assert "mean" in lines[0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            box_plot({})


class TestSparkline:
    def test_monotone_ramp(self):
        art = sparkline([1, 2, 3, 4, 5])
        assert art[0] == "▁"
        assert art[-1] == "█"

    def test_flat_series(self):
        assert sparkline([3, 3, 3]) == "▁▁▁"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparkline([])


class TestCliParser:
    def test_all_subcommands_present(self):
        parser = build_parser()
        sub = next(
            a for a in parser._actions
            if hasattr(a, "choices") and a.choices
        )
        assert set(sub.choices) == {
            "table1", "protocols", "fig4", "content", "rate",
            "fig5", "fig6", "ablations", "resilience", "campaign",
            "placement", "gauntlet", "scenarios", "validate", "report",
            "reproduce", "worker", "cache",
        }

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_common_flags_parse(self):
        args = build_parser().parse_args(
            ["fig4", "--seed", "3", "--duration", "5", "--repeats", "2"]
        )
        assert (args.seed, args.duration, args.repeats) == (3, 5.0, 2)


class TestCliExecution:
    def test_table1_runs(self, capsys):
        assert main(["table1", "--repeats", "3"]) == 0
        out = capsys.readouterr().out
        assert "Users" in out and "max cell std" in out

    def test_fig5_runs(self, capsys):
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "78030" in out
        assert "mean" in out  # the box plot rows

    def test_protocols_runs(self, capsys):
        assert main(["protocols"]) == 0
        out = capsys.readouterr().out
        assert "quic" in out and "anycast" in out

    def test_content_runs(self, capsys):
        assert main(["content"]) == 0
        out = capsys.readouterr().out
        assert "Draco" in out and "keypoints" in out


class TestReportSections:
    def test_table1_section_markdown(self):
        from repro.report import ReportSettings, table1_section

        markdown = table1_section(ReportSettings.quick())
        assert markdown.startswith("## Table 1")
        assert "| W |" in markdown

    def test_fig5_section_markdown(self):
        from repro.report import ReportSettings, fig5_section

        markdown = fig5_section(ReportSettings.quick())
        assert "78,030" in markdown
        assert "not adopted" in markdown

    def test_content_section_markdown(self):
        from repro.report import ReportSettings, content_section

        markdown = content_section(ReportSettings.quick())
        assert "Draco" in markdown and "ruled out" in markdown
