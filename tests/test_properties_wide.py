"""Wide property-based sweep across the codec and persistence layers.

Hypothesis-driven invariants that cut across modules: anything that
serializes must deserialize to the same thing, anything that compresses
must decompress within its stated error, and statistics must respect
their defining inequalities.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.stats import summarize_samples
from repro.mesh.codec import DracoLikeCodec
from repro.mesh.generate import head_mesh
from repro.mesh.model import TriangleMesh
from repro.netsim.capture import CapturedPacket, Direction, PacketCapture
from repro.netsim.trace import load_trace, save_trace
from repro.transport.fec import FecPacket
from repro.transport.rtcp import ReceiverReport, ReportBlock, parse_rtcp
from repro.vca.jitterbuffer import JitterBuffer


# ---------------------------------------------------------------------------
# Trace persistence
# ---------------------------------------------------------------------------

_addresses = st.tuples(
    st.integers(0, 255), st.integers(0, 255),
    st.integers(0, 255), st.integers(0, 255),
).map(lambda t: ".".join(map(str, t)))

_records = st.builds(
    CapturedPacket,
    timestamp=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    direction=st.sampled_from(list(Direction)),
    wire_bytes=st.integers(min_value=1, max_value=65535),
    src=_addresses,
    dst=_addresses,
    src_port=st.integers(min_value=1, max_value=65535),
    dst_port=st.integers(min_value=1, max_value=65535),
    protocol=st.sampled_from([6, 17]),
    snap=st.binary(min_size=0, max_size=64),
)


class TestTraceProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(_records, min_size=0, max_size=30), _addresses)
    def test_roundtrip_preserves_every_field(self, records, host):
        import tempfile
        from pathlib import Path

        capture = PacketCapture(host)
        capture.records.extend(records)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "t.rptr"
            save_trace(capture, path)
            loaded = load_trace(path)
        assert loaded.host_address == host
        assert len(loaded.records) == len(records)
        for original, restored in zip(records, loaded.records):
            assert restored.direction is original.direction
            assert restored.wire_bytes == original.wire_bytes
            assert restored.snap == original.snap
            assert restored.flow == original.flow
            assert restored.timestamp == pytest.approx(original.timestamp)


# ---------------------------------------------------------------------------
# FEC framing
# ---------------------------------------------------------------------------

class TestFecProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**31),
        st.integers(min_value=0, max_value=64),
        st.integers(min_value=2, max_value=16),
        st.binary(min_size=0, max_size=2000),
        st.booleans(),
    )
    def test_packet_roundtrip(self, group, index, k, payload, parity):
        packet = FecPacket(group, index, k, payload, parity)
        assert FecPacket.parse(packet.pack()) == packet


# ---------------------------------------------------------------------------
# RTCP
# ---------------------------------------------------------------------------

_blocks = st.builds(
    ReportBlock,
    ssrc=st.integers(0, 2**32 - 1),
    fraction_lost=st.integers(0, 255),
    cumulative_lost=st.integers(0, 2**24 - 1),
    highest_sequence=st.integers(0, 2**32 - 1),
    jitter=st.integers(0, 2**32 - 1),
    last_sr=st.integers(0, 2**32 - 1),
    delay_since_last_sr=st.integers(0, 2**32 - 1),
)


class TestRtcpProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.lists(_blocks, max_size=8))
    def test_receiver_report_roundtrip(self, ssrc, blocks):
        report = ReceiverReport(ssrc, tuple(blocks))
        parsed = parse_rtcp(report.pack())
        assert parsed.ssrc == ssrc
        assert parsed.blocks == tuple(blocks)


# ---------------------------------------------------------------------------
# Mesh codec
# ---------------------------------------------------------------------------

class TestMeshCodecProperties:
    @settings(max_examples=10, deadline=None)
    @given(
        st.sampled_from([200, 500, 1200]),
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=8, max_value=14),
    )
    def test_roundtrip_error_within_bound(self, triangles, seed, qbits):
        mesh = head_mesh(triangles, seed=seed)
        codec = DracoLikeCodec(quantization_bits=qbits)
        decoded = codec.decode(codec.encode(mesh))
        assert np.array_equal(decoded.faces, mesh.faces)
        error = np.abs(decoded.vertices - mesh.vertices).max()
        assert error <= codec.max_position_error(mesh) + 1e-12

    def test_degenerate_flat_mesh_survives(self):
        # A mesh with one zero-extent axis must not break quantization.
        vertices = np.array([
            [0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0],
            [1.0, 1.0, 0.0],
        ])
        faces = np.array([[0, 1, 2], [1, 3, 2]], dtype=np.int32)
        mesh = TriangleMesh(vertices, faces)
        codec = DracoLikeCodec()
        decoded = codec.decode(codec.encode(mesh))
        assert np.allclose(decoded.vertices[:, 2], 0.0, atol=1e-9)


# ---------------------------------------------------------------------------
# Statistics
# ---------------------------------------------------------------------------

class TestStatsProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.floats(min_value=-1e5, max_value=1e5,
                              allow_nan=False), min_size=1, max_size=300))
    def test_percentile_chain(self, samples):
        stats = summarize_samples(samples)
        assert stats.p5 <= stats.p25 <= stats.median <= stats.p75 <= stats.p95
        assert min(samples) - 1e-6 <= stats.median <= max(samples) + 1e-6

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(min_value=-1e5, max_value=1e5,
                              allow_nan=False), min_size=2, max_size=100),
           st.floats(min_value=-10.0, max_value=10.0, allow_nan=False))
    def test_shift_invariance(self, samples, shift):
        base = summarize_samples(samples)
        shifted = summarize_samples([s + shift for s in samples])
        assert shifted.mean == pytest.approx(base.mean + shift, abs=1e-6)
        assert shifted.std == pytest.approx(base.std, abs=1e-6)


# ---------------------------------------------------------------------------
# Jitter buffer
# ---------------------------------------------------------------------------

class TestJitterBufferProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
                st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
            ).map(lambda t: (t[0], t[0] + t[1])),
            min_size=1, max_size=200,
        ),
        st.floats(min_value=0.0, max_value=600.0, allow_nan=False),
    )
    def test_lateness_monotone_in_delay(self, timestamps, delay_ms):
        tight = JitterBuffer(delay_ms).play(timestamps)
        roomy = JitterBuffer(delay_ms + 50.0).play(timestamps)
        assert roomy.late_frames <= tight.late_frames
