"""Property suite for the QoE model: scalar/vector agreement, knee
continuity, and the QoeVector's bit-identical aggregation contract."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import calibration
from repro.vca.profiles import PROFILES
from repro.vca.qoe import (
    QoeFactors,
    QoeVector,
    delay_factor,
    delay_factor_arrays,
    frame_rate_factor,
    quality_factor,
    score,
)

_delays = st.floats(min_value=0.0, max_value=2000.0,
                    allow_nan=False, allow_infinity=False)
_unit = st.floats(min_value=0.0, max_value=1.0,
                  allow_nan=False, allow_infinity=False)
_fps = st.floats(min_value=0.0, max_value=240.0,
                 allow_nan=False, allow_infinity=False)

TARGET = float(calibration.TARGET_FPS)


class TestDelayFactorEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(_delays)
    def test_scalar_equals_vectorized_bit_exact(self, delay):
        scalar = delay_factor(delay)
        vector = delay_factor_arrays(np.array([delay]))
        assert scalar == float(vector[0])

    @settings(max_examples=50, deadline=None)
    @given(st.lists(_delays, min_size=1, max_size=64))
    def test_array_elements_match_scalar(self, delays):
        vector = delay_factor_arrays(np.array(delays))
        for delay, value in zip(delays, vector):
            assert delay_factor(delay) == float(value)

    def test_threshold_edge(self):
        assert delay_factor(100.0) == 1.0
        assert float(delay_factor_arrays(np.array([100.0]))[0]) == 1.0
        assert delay_factor(np.nextafter(100.0, np.inf)) < 1.0


class TestFrameRateKnees:
    @settings(max_examples=200, deadline=None)
    @given(_fps)
    def test_monotone_and_bounded(self, fps):
        value = frame_rate_factor(fps)
        assert 0.0 <= value <= 1.0
        assert frame_rate_factor(fps + 1.0) >= value

    @pytest.mark.parametrize("knee", [60.0, TARGET])
    def test_continuity_at_knee(self, knee):
        below = frame_rate_factor(np.nextafter(knee, 0.0))
        at = frame_rate_factor(knee)
        above = frame_rate_factor(np.nextafter(knee, np.inf))
        assert at - below < 1e-9
        assert above - at < 1e-9

    @settings(max_examples=100, deadline=None)
    @given(_fps, st.floats(min_value=61.0, max_value=240.0,
                           allow_nan=False))
    def test_lipschitz_for_any_target(self, fps, target):
        # Piecewise linear with slope at most max(0.9/60, 0.1/(target-60)).
        low = frame_rate_factor(max(0.0, fps - 1e-6), target)
        high = frame_rate_factor(fps + 1e-6, target)
        slope = max(0.9 / 60.0, 0.1 / (target - 60.0))
        assert 0.0 <= high - low <= slope * 2e-6 + 1e-12

    def test_knee_values(self):
        assert frame_rate_factor(TARGET) == 1.0
        assert frame_rate_factor(60.0) == pytest.approx(0.9)
        assert frame_rate_factor(0.0) == 0.0


class TestVectorAggregation:
    @settings(max_examples=200, deadline=None)
    @given(_delays, _unit, _fps, _unit)
    def test_aggregate_equals_score_bit_exact(self, delay, avail, fps,
                                              triangles):
        factors = QoeFactors(one_way_delay_ms=delay,
                             persona_availability=avail,
                             displayed_fps=fps,
                             triangle_fraction=triangles)
        vector = QoeVector.from_factors(factors)
        assert vector.aggregate() == score(factors)

    def test_aggregate_equals_score_on_the_four_profiles(self):
        # The paper's four VCAs at their measured operating points: each
        # profile's delivered FPS and a spread of delays/availabilities.
        for name, profile in PROFILES.items():
            for delay in (20.0, 100.0, 180.0, 400.0):
                for avail in (1.0, 0.9, 0.5):
                    factors = QoeFactors(
                        one_way_delay_ms=delay,
                        persona_availability=avail,
                        displayed_fps=float(profile.video_fps),
                        triangle_fraction=0.8,
                    )
                    vector = QoeVector.from_factors(factors)
                    assert vector.aggregate() == score(factors), name

    @settings(max_examples=100, deadline=None)
    @given(_delays, _unit, _fps, _unit)
    def test_dimensions_are_the_scalar_factors(self, delay, avail, fps,
                                               triangles):
        factors = QoeFactors(one_way_delay_ms=delay,
                             persona_availability=avail,
                             displayed_fps=fps,
                             triangle_fraction=triangles)
        vector = QoeVector.from_factors(factors)
        assert vector.interactivity == delay_factor(delay)
        assert vector.presence == avail
        assert vector.fidelity == quality_factor(triangles)
        assert vector.comfort == frame_rate_factor(fps)

    def test_validation_and_helpers(self):
        with pytest.raises(ValueError, match="presence"):
            QoeVector(interactivity=1.0, presence=1.5, fidelity=1.0,
                      comfort=1.0)
        vector = QoeVector(interactivity=0.9, presence=0.8, fidelity=0.7,
                           comfort=0.6)
        assert vector.worst_dimension() == "comfort"
        payload = vector.to_dict()
        assert payload["aggregate"] == vector.aggregate()
        assert set(payload) == {"interactivity", "presence", "fidelity",
                                "comfort", "aggregate"}

    def test_worst_dimension_tie_breaks_in_declaration_order(self):
        tied = QoeVector(interactivity=0.5, presence=0.5, fidelity=0.5,
                         comfort=0.5)
        assert tied.worst_dimension() == "interactivity"
