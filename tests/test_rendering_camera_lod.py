"""Camera geometry and the LOD policy tiers."""

import numpy as np
import pytest

from repro import calibration
from repro.rendering.camera import Camera, head_coverage
from repro.rendering.lod import (
    TIER_TRIANGLES,
    LodPolicy,
    PersonaView,
    VisibilityState,
)

FWD = np.array([1.0, 0.0, 0.0])


def view(position, ecc=0.0, pid="p"):
    return PersonaView(pid, np.asarray(position, dtype=float), ecc)


class TestCamera:
    def test_distance(self):
        cam = Camera(np.zeros(3), FWD)
        assert cam.distance_to([3.0, 4.0, 0.0]) == pytest.approx(5.0)

    def test_angle_from_forward(self):
        cam = Camera(np.zeros(3), FWD)
        assert cam.angle_from_forward_deg([1.0, 0.0, 0.0]) == pytest.approx(0.0)
        assert cam.angle_from_forward_deg([0.0, 1.0, 0.0]) == pytest.approx(90.0)

    def test_in_viewport_center(self):
        cam = Camera(np.zeros(3), FWD)
        assert cam.in_viewport([2.0, 0.0, 0.0])

    def test_behind_is_outside(self):
        cam = Camera(np.zeros(3), FWD)
        assert not cam.in_viewport([-1.0, 0.0, 0.0])

    def test_horizontal_edge(self):
        cam = Camera(np.zeros(3), FWD)
        import math

        inside = [math.cos(math.radians(45)), math.sin(math.radians(45)), 0.0]
        outside = [math.cos(math.radians(60)), math.sin(math.radians(60)), 0.0]
        assert cam.in_viewport(inside)
        assert not cam.in_viewport(outside)

    def test_vertical_fov_narrower(self):
        import math

        cam = Camera(np.zeros(3), FWD)
        deg45 = [math.cos(math.radians(45)), 0.0, math.sin(math.radians(45))]
        assert not cam.in_viewport(deg45)  # vertical half-FOV is 39 degrees

    def test_turned_toward_blends(self):
        cam = Camera(np.zeros(3), FWD)
        target = np.array([0.0, 1.0, 0.0])
        halfway = cam.turned_toward(target, 0.5)
        angle = halfway.angle_from_forward_deg(target)
        assert 0 < angle < 90

    def test_turn_fraction_validated(self):
        cam = Camera(np.zeros(3), FWD)
        with pytest.raises(ValueError):
            cam.turned_toward(np.array([0.0, 1.0, 0.0]), 1.5)

    def test_zero_forward_rejected(self):
        with pytest.raises(ValueError):
            Camera(np.zeros(3), np.zeros(3))


class TestCoverage:
    def test_inverse_square(self):
        assert head_coverage(2.0) == pytest.approx(head_coverage(1.0) / 4.0)

    def test_capped_at_one(self):
        assert head_coverage(0.01) == 1.0

    def test_invalid_distance(self):
        with pytest.raises(ValueError):
            head_coverage(0.0)


class TestLodTiers:
    """The policy must reproduce the four Sec. 4.4 tiers exactly."""

    def setup_method(self):
        self.policy = LodPolicy()
        self.camera = Camera(np.zeros(3), FWD)

    def _decide(self, v):
        return self.policy.decide(self.camera, [v])[0]

    def test_full_tier(self):
        d = self._decide(view([1.0, 0.0, 0.0], ecc=0.0))
        assert d.state is VisibilityState.FULL
        assert d.triangles == calibration.PERSONA_TRIANGLES

    def test_viewport_culled_tier(self):
        d = self._decide(view([-1.0, 0.0, 0.0], ecc=150.0))
        assert d.state is VisibilityState.CULLED
        assert d.triangles == calibration.VIEWPORT_CULLED_TRIANGLES
        assert d.coverage == 0.0

    def test_peripheral_tier(self):
        d = self._decide(view([1.0, 0.5, 0.0], ecc=45.0))
        assert d.state is VisibilityState.PERIPHERAL
        assert d.triangles == calibration.FOVEATED_TRIANGLES
        assert d.foveated_shading

    def test_distant_tier(self):
        d = self._decide(view([3.5, 0.0, 0.0], ecc=0.0))
        assert d.state is VisibilityState.DISTANT
        assert d.triangles == calibration.DISTANCE_TRIANGLES

    def test_distance_boundary_is_three_meters(self):
        near = self._decide(view([2.9, 0.0, 0.0]))
        far = self._decide(view([3.1, 0.0, 0.0]))
        assert near.state is VisibilityState.FULL
        assert far.state is VisibilityState.DISTANT

    def test_peripheral_beats_distance(self):
        # A persona that is both far and peripheral is rendered at the
        # peripheral tier (fewest triangles of the two).
        d = self._decide(view([3.5, 1.0, 0.0], ecc=40.0))
        assert d.state is VisibilityState.PERIPHERAL

    def test_disabled_optimizations_keep_full(self):
        policy = LodPolicy(viewport_adaptation=False, foveated_rendering=False,
                           distance_aware=False)
        cam = Camera(np.zeros(3), FWD)
        decisions = policy.decide(cam, [
            view([-1.0, 0.0, 0.0], ecc=150.0),
            view([3.5, 0.0, 0.0], ecc=0.0),
            view([1.0, 0.5, 0.0], ecc=45.0),
        ])
        assert all(d.state is VisibilityState.FULL for d in decisions)


class TestOcclusion:
    def _line(self):
        return [
            view([1.0, 0.0, 0.0], pid="near"),
            view([2.0, 0.0, 0.0], pid="far"),
        ]

    def test_disabled_by_default(self):
        # The paper finds FaceTime does not occlusion-cull (Sec. 4.4).
        policy = LodPolicy()
        cam = Camera(np.zeros(3), FWD)
        decisions = policy.decide(cam, self._line())
        assert all(d.state is not VisibilityState.OCCLUDED for d in decisions)

    def test_enabled_culls_hidden_persona(self):
        policy = LodPolicy(occlusion_aware=True)
        cam = Camera(np.zeros(3), FWD)
        by_id = {d.persona_id: d for d in policy.decide(cam, self._line())}
        assert by_id["near"].state is VisibilityState.FULL
        assert by_id["far"].state is VisibilityState.OCCLUDED
        assert by_id["far"].triangles == 0

    def test_side_by_side_not_occluded(self):
        policy = LodPolicy(occlusion_aware=True)
        cam = Camera(np.zeros(3), FWD)
        personas = [
            view([1.0, -0.4, 0.0], pid="a"),
            view([2.0, 0.8, 0.0], pid="b", ecc=20.0),
        ]
        decisions = policy.decide(cam, personas)
        assert all(d.state is not VisibilityState.OCCLUDED for d in decisions)


class TestTierTable:
    def test_tier_triangles_strictly_ordered(self):
        assert (
            TIER_TRIANGLES[VisibilityState.FULL]
            > TIER_TRIANGLES[VisibilityState.DISTANT]
            > TIER_TRIANGLES[VisibilityState.PERIPHERAL]
            > TIER_TRIANGLES[VisibilityState.CULLED]
            > TIER_TRIANGLES[VisibilityState.OCCLUDED]
        )
