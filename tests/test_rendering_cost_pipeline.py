"""Cost models, the Fig. 5 fit, gaze dynamics, and the render pipeline."""

import numpy as np
import pytest

from repro import calibration
from repro.rendering.camera import Camera, head_coverage
from repro.rendering.cost import (
    CPU_COST_FIT,
    FRAME_COST_FIT,
    CpuCostModel,
    GpuCostModel,
)
from repro.rendering.gaze import AttentionModel, arrange_personas
from repro.rendering.lod import LodDecision, LodPolicy, PersonaView, VisibilityState
from repro.rendering.pipeline import RenderPipeline, summarize

FWD = np.array([1.0, 0.0, 0.0])


def decision(state, triangles, coverage, foveated=False):
    return LodDecision("p", state, triangles, coverage, foveated)


class TestGpuFit:
    """The solved parameters must reproduce all four Fig. 5 anchors."""

    def setup_method(self):
        self.gpu = GpuCostModel(noise_std_ms=0.0)

    def _time(self, d):
        return self.gpu.frame_time_ms([d], noisy=False)

    def test_baseline_anchor(self):
        d = decision(VisibilityState.FULL, calibration.PERSONA_TRIANGLES,
                     head_coverage(1.0))
        assert self._time(d) == pytest.approx(calibration.GPU_MS_BASELINE[0], abs=0.01)

    def test_viewport_anchor(self):
        d = decision(VisibilityState.CULLED,
                     calibration.VIEWPORT_CULLED_TRIANGLES, 0.0)
        assert self._time(d) == pytest.approx(calibration.GPU_MS_VIEWPORT[0], abs=0.01)

    def test_foveated_anchor(self):
        d = decision(VisibilityState.PERIPHERAL, calibration.FOVEATED_TRIANGLES,
                     head_coverage(1.0), foveated=True)
        assert self._time(d) == pytest.approx(calibration.GPU_MS_FOVEATED[0], abs=0.01)

    def test_distance_anchor(self):
        d = decision(VisibilityState.DISTANT, calibration.DISTANCE_TRIANGLES,
                     head_coverage(3.0))
        assert self._time(d) == pytest.approx(calibration.GPU_MS_DISTANCE[0], abs=0.01)

    def test_fit_parameters_physical(self):
        assert FRAME_COST_FIT.setup_ms > 0
        assert FRAME_COST_FIT.k_tri_ms > 0
        assert FRAME_COST_FIT.k_frag_ms > 0
        assert 0 < FRAME_COST_FIT.foveated_shading_factor < 1

    def test_cost_additive_over_personas(self):
        d = decision(VisibilityState.FULL, 10_000, 0.01)
        one = self.gpu.frame_time_ms([d], noisy=False)
        two = self.gpu.frame_time_ms([d, d], noisy=False)
        assert two - one == pytest.approx(one - FRAME_COST_FIT.setup_ms)

    def test_noise_is_applied(self):
        gpu = GpuCostModel(noise_std_ms=0.1)
        gpu.seed(1)
        d = decision(VisibilityState.FULL, 10_000, 0.01)
        times = {gpu.frame_time_ms([d]) for _ in range(10)}
        assert len(times) > 1

    def test_spikes_only_when_sources_given(self):
        gpu = GpuCostModel(noise_std_ms=0.0, spike_prob=1.0, spike_scale_ms=2.0)
        gpu.seed(0)
        d = decision(VisibilityState.FULL, 10_000, 0.01)
        calm = gpu.frame_time_ms([d], noisy=False, spike_sources=0)
        spiky = gpu.frame_time_ms([d], noisy=False, spike_sources=1)
        assert spiky > calm


class TestCpuFit:
    def test_two_user_anchor(self):
        cpu = CpuCostModel(noise_std_ms=0.0)
        assert cpu.frame_time_ms(1, noisy=False) == pytest.approx(
            calibration.CPU_MS_TWO_USERS[0], abs=0.01
        )

    def test_five_user_anchor(self):
        cpu = CpuCostModel(noise_std_ms=0.0)
        assert cpu.frame_time_ms(4, noisy=False) == pytest.approx(
            calibration.CPU_MS_FIVE_USERS[0], abs=0.01
        )

    def test_linear_in_personas(self):
        cpu = CpuCostModel(noise_std_ms=0.0)
        deltas = [
            cpu.frame_time_ms(n + 1, noisy=False) - cpu.frame_time_ms(n, noisy=False)
            for n in range(4)
        ]
        assert all(d == pytest.approx(CPU_COST_FIT.per_persona_ms) for d in deltas)

    def test_starved_stream_reduces_decode(self):
        cpu = CpuCostModel(noise_std_ms=0.0)
        healthy = cpu.frame_time_ms(4, noisy=False)
        starved = cpu.frame_time_ms(4, noisy=False, received_fraction=0.5)
        assert starved < healthy

    def test_negative_personas_rejected(self):
        with pytest.raises(ValueError):
            CpuCostModel().frame_time_ms(-1)


class TestAttention:
    def test_single_persona_mostly_foveal(self):
        personas = arrange_personas(["a"])
        attention = AttentionModel(personas, seed=0)
        eccs = [attention.step().views[0].gaze_eccentricity_deg
                for _ in range(900)]
        assert np.mean(np.array(eccs) < 25.0) > 0.85

    def test_multi_persona_attention_switches(self):
        personas = arrange_personas(["a", "b", "c"])
        attention = AttentionModel(personas, seed=1)
        foveal_counts = {p.persona_id: 0 for p in personas}
        for _ in range(2700):
            sample = attention.step()
            for v in sample.views:
                if v.gaze_eccentricity_deg < 25.0:
                    foveal_counts[v.persona_id] += 1
        assert all(count > 0 for count in foveal_counts.values())

    def test_deterministic_per_seed(self):
        personas = arrange_personas(["a", "b"])
        a = AttentionModel(personas, seed=3)
        b = AttentionModel(personas, seed=3)
        for _ in range(50):
            assert a.step().gaze_angle_deg == b.step().gaze_angle_deg

    def test_arrangement_distance_grows_with_count(self):
        two = arrange_personas(["a"])
        five = arrange_personas(["a", "b", "c", "d"])
        assert five[0].distance_m > two[0].distance_m

    def test_empty_arrangement_rejected(self):
        with pytest.raises(ValueError):
            arrange_personas([])


class TestPipeline:
    def test_frame_stats_fields(self):
        pipe = RenderPipeline(seed=0)
        cam = Camera(np.zeros(3), FWD)
        stats = pipe.render_frame(
            0, cam, [PersonaView("a", np.array([1.0, 0.0, 0.0]), 0.0)]
        )
        assert stats.triangles == calibration.PERSONA_TRIANGLES
        assert stats.gpu_ms > 0
        assert stats.cpu_ms > 0
        assert not stats.missed_deadline

    def test_session_frame_count(self):
        pipe = RenderPipeline(seed=0)
        frames = pipe.render_session(["a"], duration_s=1.0)
        assert len(frames) == calibration.TARGET_FPS

    def test_session_summary_keys(self):
        pipe = RenderPipeline(seed=0)
        summary = summarize(pipe.render_session(["a"], duration_s=2.0))
        assert set(summary) >= {
            "gpu_ms_mean", "cpu_ms_mean", "triangles_mean", "deadline_miss_rate"
        }

    def test_deadline_flag(self):
        from repro.rendering.pipeline import FrameStats

        slow = FrameStats(0, 1, gpu_ms=12.0, cpu_ms=5.0, decisions=())
        fast = FrameStats(0, 1, gpu_ms=9.0, cpu_ms=5.0, decisions=())
        assert slow.missed_deadline
        assert not fast.missed_deadline

    def test_empty_summary_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_invalid_duration_rejected(self):
        with pytest.raises(ValueError):
            RenderPipeline().render_session(["a"], duration_s=0)
