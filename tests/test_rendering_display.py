"""Display-latency model: the Sec. 4.3 discriminating experiment."""

import numpy as np
import pytest

from repro import calibration
from repro.rendering.display import ContentDeliveryMode, DisplayLatencyModel


def mean_difference(model, rtt_ms, trials=200):
    return float(np.mean([
        model.latency_difference_ms(rtt_ms) for _ in range(trials)
    ]))


class TestLocalReconstruction:
    def test_difference_under_paper_bound(self):
        model = DisplayLatencyModel(mode=ContentDeliveryMode.LOCAL_RECONSTRUCTION)
        model.seed(0)
        for delay in (0, 500, 1000):
            diff = mean_difference(model, 40.0 + delay)
            assert diff < calibration.DISPLAY_LATENCY_DIFF_BOUND_MS

    def test_difference_invariant_to_network(self):
        model = DisplayLatencyModel(mode=ContentDeliveryMode.LOCAL_RECONSTRUCTION)
        model.seed(1)
        at_zero = mean_difference(model, 40.0)
        at_one_second = mean_difference(model, 1040.0)
        assert abs(at_one_second - at_zero) < 2.0


class TestSenderRendered:
    def test_difference_tracks_injected_delay(self):
        model = DisplayLatencyModel(mode=ContentDeliveryMode.SENDER_RENDERED_VIDEO)
        model.seed(2)
        low = mean_difference(model, 40.0)
        high = mean_difference(model, 1040.0)
        assert high - low == pytest.approx(1000.0, abs=20.0)

    def test_modes_disagree_under_delay(self):
        local = DisplayLatencyModel(mode=ContentDeliveryMode.LOCAL_RECONSTRUCTION)
        remote = DisplayLatencyModel(mode=ContentDeliveryMode.SENDER_RENDERED_VIDEO)
        local.seed(3)
        remote.seed(3)
        assert mean_difference(remote, 540.0) > 10 * mean_difference(local, 540.0)


class TestValidation:
    def test_negative_rtt_rejected(self):
        with pytest.raises(ValueError):
            DisplayLatencyModel().persona_latency_ms(-1.0)

    def test_passthrough_positive(self):
        model = DisplayLatencyModel()
        model.seed(4)
        assert model.passthrough_latency_ms() > 0
