"""Property-based invariants over random rendered scenes."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import calibration
from repro.rendering.camera import Camera
from repro.rendering.cost import GpuCostModel
from repro.rendering.gaze import AttentionModel, arrange_personas
from repro.rendering.lod import (
    TIER_TRIANGLES,
    LodPolicy,
    PersonaView,
    VisibilityState,
)
from repro.rendering.pipeline import RenderPipeline

FWD = np.array([1.0, 0.0, 0.0])

_scene_views = st.lists(
    st.tuples(
        st.floats(min_value=0.3, max_value=8.0, allow_nan=False),   # distance
        st.floats(min_value=-180.0, max_value=180.0, allow_nan=False),  # angle
        st.floats(min_value=0.0, max_value=180.0, allow_nan=False),     # ecc
    ),
    min_size=1, max_size=6,
)


def build_views(raw):
    views = []
    for i, (distance, angle_deg, ecc) in enumerate(raw):
        rad = math.radians(angle_deg)
        views.append(PersonaView(
            f"p{i}",
            np.array([distance * math.cos(rad),
                      distance * math.sin(rad), 0.0]),
            ecc,
        ))
    return views


class TestLodInvariants:
    @settings(max_examples=80, deadline=None)
    @given(_scene_views)
    def test_one_decision_per_view_from_known_tiers(self, raw):
        policy = LodPolicy()
        camera = Camera(np.zeros(3), FWD)
        decisions = policy.decide(camera, build_views(raw))
        assert len(decisions) == len(raw)
        for decision in decisions:
            assert decision.triangles == TIER_TRIANGLES[decision.state]
            assert decision.coverage >= 0.0

    @settings(max_examples=80, deadline=None)
    @given(_scene_views)
    def test_culled_iff_outside_viewport(self, raw):
        policy = LodPolicy()
        camera = Camera(np.zeros(3), FWD)
        views = build_views(raw)
        for view, decision in zip(views, policy.decide(camera, views)):
            in_view = camera.in_viewport(view.position)
            if decision.state is VisibilityState.CULLED:
                assert not in_view
            elif in_view is False:
                # Out-of-view personas must always be culled when the
                # optimization is on.
                assert decision.state is VisibilityState.CULLED

    @settings(max_examples=50, deadline=None)
    @given(_scene_views)
    def test_disabling_all_optimizations_maximizes_triangles(self, raw):
        camera = Camera(np.zeros(3), FWD)
        views = build_views(raw)
        optimized = sum(
            d.triangles for d in LodPolicy().decide(camera, views)
        )
        unoptimized = sum(
            d.triangles for d in LodPolicy(
                viewport_adaptation=False, foveated_rendering=False,
                distance_aware=False,
            ).decide(camera, views)
        )
        assert unoptimized >= optimized
        assert unoptimized == len(views) * calibration.PERSONA_TRIANGLES


class TestGpuCostInvariants:
    @settings(max_examples=50, deadline=None)
    @given(_scene_views)
    def test_cost_positive_and_monotone_in_personas(self, raw):
        policy = LodPolicy()
        camera = Camera(np.zeros(3), FWD)
        gpu = GpuCostModel(noise_std_ms=0.0)
        views = build_views(raw)
        decisions = policy.decide(camera, views)
        full = gpu.frame_time_ms(decisions, noisy=False)
        fewer = gpu.frame_time_ms(decisions[:-1], noisy=False)
        assert full > 0
        assert full >= fewer - 1e-9

    @settings(max_examples=50, deadline=None)
    @given(st.floats(min_value=0.3, max_value=8.0, allow_nan=False))
    def test_full_tier_cost_decreases_with_distance(self, distance):
        # Same triangles, smaller coverage: farther is never pricier.
        policy = LodPolicy(distance_aware=False, foveated_rendering=False)
        camera = Camera(np.zeros(3), FWD)
        gpu = GpuCostModel(noise_std_ms=0.0)
        near = policy.decide(
            camera, [PersonaView("a", np.array([0.3, 0.0, 0.0]), 0.0)]
        )
        far = policy.decide(
            camera, [PersonaView("a", np.array([distance, 0.0, 0.0]), 0.0)]
        )
        assert gpu.frame_time_ms(far, noisy=False) <= \
            gpu.frame_time_ms(near, noisy=False) + 1e-9


class TestAttentionInvariants:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=5),
           st.integers(min_value=0, max_value=100))
    def test_sample_structure(self, n_personas, seed):
        personas = arrange_personas([f"p{i}" for i in range(n_personas)])
        attention = AttentionModel(personas, seed=seed)
        for _ in range(30):
            sample = attention.step()
            assert len(sample.views) == n_personas
            for view in sample.views:
                assert view.gaze_eccentricity_deg >= 0.0
            norm = np.linalg.norm(sample.camera.forward)
            assert norm == pytest.approx(1.0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=5))
    def test_arc_is_symmetric(self, n_personas):
        personas = arrange_personas([f"p{i}" for i in range(n_personas)])
        angles = [p.angle_deg for p in personas]
        assert sum(angles) == pytest.approx(0.0, abs=1e-9)
        assert angles == sorted(angles)


class TestPipelineInvariants:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=1, max_value=4),
           st.integers(min_value=0, max_value=50))
    def test_session_counters_consistent(self, n_personas, seed):
        pipeline = RenderPipeline(seed=seed)
        frames = pipeline.render_session(
            [f"p{i}" for i in range(n_personas)], duration_s=0.5
        )
        assert len(frames) == 45  # 0.5 s at 90 FPS
        for frame in frames:
            assert len(frame.decisions) == n_personas
            assert frame.triangles == sum(
                d.triangles for d in frame.decisions
            )
            assert frame.gpu_ms >= 0.0
            assert frame.cpu_ms >= 0.0
