"""The graceful-degradation ladder, recovery guarantees, and determinism."""

import hashlib
import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.testbed import default_two_user_testbed
from repro.faults import (
    BackoffPolicy,
    DegradationLadder,
    FaultEvent,
    FaultKind,
    FaultSchedule,
    LadderLevel,
    ResilienceConfig,
    next_level,
    standard_disturbance,
    sustainable_level,
)
from repro.transport.fec import AdaptiveFecPolicy, FecEncoder
from repro.vca.jitterbuffer import AdaptiveJitterBuffer
from repro.vca.profiles import PROFILES

NOMINAL = {
    LadderLevel.TEXTURED_MESH: 6_000_000.0,
    LadderLevel.SIMPLIFIED_MESH: 1_500_000.0,
    LadderLevel.KEYPOINTS: 600_000.0,
    LadderLevel.AUDIO_ONLY: 48_000.0,
}


class TestLadderProperties:
    @given(
        low=st.floats(0.0, 8e6, allow_nan=False),
        high=st.floats(0.0, 8e6, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_sustainable_level_monotone_in_goodput(self, low, high):
        if low > high:
            low, high = high, low
        assert (sustainable_level(low, NOMINAL)
                <= sustainable_level(high, NOMINAL))

    @given(
        current=st.sampled_from(list(LadderLevel)),
        streak=st.integers(0, 10),
        low=st.floats(0.0, 8e6, allow_nan=False),
        high=st.floats(0.0, 8e6, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_next_level_monotone_in_goodput(self, current, streak, low, high):
        if low > high:
            low, high = high, low
        assert (next_level(current, low, NOMINAL, streak)
                <= next_level(current, high, NOMINAL, streak))

    def test_down_is_immediate_up_needs_streak(self):
        ladder = DegradationLadder(nominal_bps=dict(NOMINAL), settle_s=0.0)
        assert ladder.observe(1.0, 0.0) is LadderLevel.AUDIO_ONLY
        # One clean interval is not enough to climb...
        assert ladder.observe(2.0, 8e6) is LadderLevel.AUDIO_ONLY
        assert ladder.observe(3.0, 8e6) is LadderLevel.AUDIO_ONLY
        # ...the third clean interval probes one rung up, not four.
        assert ladder.observe(4.0, 8e6) is LadderLevel.KEYPOINTS

    def test_settle_holds_judgement_after_transition(self):
        ladder = DegradationLadder(nominal_bps=dict(NOMINAL), settle_s=1.0)
        ladder.observe(1.5, 0.0)  # drop
        assert ladder.level is LadderLevel.AUDIO_ONLY
        # Inside the hold-down the (still stale) reading is ignored.
        ladder.observe(2.0, 0.0)
        ladder.observe(2.4, 0.0)
        assert len(ladder.transitions) == 2

    @given(
        seed=st.integers(0, 10_000),
        duration=st.floats(5.0, 60.0, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_occupancy_sums_to_duration(self, seed, duration):
        import random

        rng = random.Random(seed)
        ladder = DegradationLadder(nominal_bps=dict(NOMINAL), settle_s=0.0)
        for i in range(40):
            ladder.observe(i * duration / 40, rng.uniform(0.0, 8e6))
        total = sum(ladder.occupancy(duration).values())
        assert total == pytest.approx(duration)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            sustainable_level(-1.0, NOMINAL)
        with pytest.raises(ValueError):
            DegradationLadder(nominal_bps=dict(NOMINAL), settle_s=-1.0)
        ladder = DegradationLadder(nominal_bps=dict(NOMINAL))
        with pytest.raises(ValueError):
            ladder.occupancy(0.0)


class TestAdaptiveFec:
    def test_disabled_below_enable_threshold(self):
        policy = AdaptiveFecPolicy()
        assert policy.k_for_loss(0.0) is None
        assert policy.k_for_loss(0.004) is None

    def test_k_shrinks_as_loss_grows(self):
        policy = AdaptiveFecPolicy()
        ks = [policy.k_for_loss(loss)
              for loss in (0.01, 0.06, 0.2)]
        assert ks == [4, 3, 2]

    def test_loss_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveFecPolicy().k_for_loss(1.5)

    def test_encoder_group_ids_never_collide_across_k_switch(self):
        first = FecEncoder(4)
        for _ in range(3):  # partial group: index mid-stream
            first.protect(b"x" * 40)
        successor = FecEncoder(2, first_group=first.next_group)
        packets = successor.protect(b"y" * 40)
        assert all(p.group >= first.next_group for p in packets)


class TestAdaptiveJitterBuffer:
    def test_delay_stays_inside_clamp(self):
        buffer = AdaptiveJitterBuffer()
        for i in range(200):
            jitter = 0.04 if i % 7 == 0 else 0.001
            buffer.observe(i * 0.02, i * 0.02 + 0.03 + jitter)
        assert 5.0 <= buffer.playout_delay_ms <= 500.0

    def test_more_jitter_more_delay(self):
        calm, rough = AdaptiveJitterBuffer(), AdaptiveJitterBuffer()
        for i in range(300):
            calm.observe(i * 0.02, i * 0.02 + 0.030)
            rough.observe(i * 0.02, i * 0.02 + 0.030 + (i % 5) * 0.01)
        assert rough.playout_delay_ms > calm.playout_delay_ms


class TestBackoff:
    def test_exponential_growth_capped(self):
        policy = BackoffPolicy(base_s=0.25, factor=2.0, cap_s=4.0)
        delays = [policy.delay_s(a) for a in range(6)]
        assert delays[:3] == [0.25, 0.5, 1.0]
        assert delays[-1] == 4.0
        assert all(a <= b for a, b in zip(delays, delays[1:]))


def _run_with(schedule, profile="FaceTime", duration=15.0, seed=1):
    session = default_two_user_testbed().session(
        PROFILES[profile], seed=seed,
        faults=schedule, resilience=ResilienceConfig(),
    )
    return session.run(duration)


class TestRecovery:
    @pytest.mark.parametrize("kind,magnitude", [
        (FaultKind.LINK_BLACKOUT, 0.0),
        (FaultKind.BANDWIDTH_COLLAPSE, 0.004),
        (FaultKind.LOSS_BURST, 0.15),
        (FaultKind.JITTER_BURST, 40.0),
        (FaultKind.WIFI_DEGRADATION, 0.25),
    ])
    def test_recovery_finite_for_every_fault_kind(self, kind, magnitude):
        schedule = FaultSchedule.scripted([
            FaultEvent(kind, "U2", 3.0, 2.0, magnitude),
        ])
        result = _run_with(schedule)
        report = result.resilience.report("U1", "U2")
        assert report.all_recovered
        for recovery in report.recoveries:
            assert recovery.time_to_recover_s < result.duration_s

    def test_server_outage_fails_over_with_finite_downtime(self):
        schedule = standard_disturbance(30.0)
        result = _run_with(schedule, duration=30.0)
        resilience = result.resilience
        assert resilience.report("U1", "U2").all_recovered
        assert resilience.reconnects >= 1
        for event in resilience.reconnect_events:
            assert event.recovered_s is not None
            assert event.downtime_s < 10.0
            assert event.to_server is not None

    def test_ladder_walks_down_and_climbs_back(self):
        schedule = FaultSchedule.scripted([
            FaultEvent(FaultKind.LINK_BLACKOUT, "U2", 3.0, 2.0),
        ])
        result = _run_with(schedule, duration=20.0)
        ladder = result.resilience.ladders["U2"]
        levels = [level for _t, level in ladder.transitions]
        assert min(levels) < LadderLevel.TEXTURED_MESH  # descended
        assert ladder.level is LadderLevel.TEXTURED_MESH  # climbed back
        occupancy = ladder.occupancy(20.0)
        assert sum(occupancy.values()) == pytest.approx(20.0)

    def test_mos_under_faults_between_1_and_5(self):
        result = _run_with(standard_disturbance(20.0), duration=20.0)
        report = result.resilience.report("U1", "U2")
        assert 1.0 <= report.mos_mean <= 5.0
        clean = _run_with(FaultSchedule())
        assert clean.resilience.report("U1", "U2").mos_mean > report.mos_mean


def _capture_digest(result) -> str:
    digest = hashlib.sha256()
    for uid in sorted(result.captures):
        for r in result.captures[uid].records:
            digest.update(
                f"{r.timestamp:.9f}|{r.src}|{r.dst}|{r.src_port}|"
                f"{r.dst_port}|{r.wire_bytes}|{r.protocol}".encode()
            )
            digest.update(r.snap)
    return digest.hexdigest()


class TestDeterminismAndNonInterference:
    def test_plain_sessions_never_build_the_runtime(self):
        session = default_two_user_testbed().session(PROFILES["FaceTime"])
        assert session.resilience_runtime is None
        assert session.run(5.0).resilience is None

    def test_disabled_runtime_leaves_traffic_byte_identical(self):
        """An armed-but-idle runtime must not perturb the simulation."""
        plain = default_two_user_testbed().session(
            PROFILES["FaceTime"], seed=5
        ).run(10.0)
        idle = default_two_user_testbed().session(
            PROFILES["FaceTime"], seed=5,
            faults=FaultSchedule(),
            resilience=ResilienceConfig(enable_ladder=False,
                                        enable_reconnect=False),
        ).run(10.0)
        assert _capture_digest(plain) == _capture_digest(idle)

    def test_same_seed_same_fault_run(self):
        digests = [
            _capture_digest(_run_with(standard_disturbance(15.0), seed=4))
            for _ in range(2)
        ]
        assert digests[0] == digests[1]

    def test_experiment_rows_deterministic(self):
        from repro.experiments import resilience

        first, _ = resilience.run_profile("FaceTime", duration_s=12.0, seed=2)
        second, _ = resilience.run_profile("FaceTime", duration_s=12.0, seed=2)
        assert first == second


_HASHSEED_SNIPPET = """
from repro.geo.geolocate import default_database
from repro.geo.servers import ALL_FLEETS
db = default_database()
server = ALL_FLEETS["FaceTime"].servers[0]
point = db.lookup(server.address)
print(f"{point.lat:.9f},{point.lon:.9f}")
"""


class TestHashSeedIndependence:
    def test_geolocation_stable_across_hash_seeds(self):
        src = Path(__file__).resolve().parent.parent / "src"
        outputs = set()
        for hashseed in ("0", "4242"):
            env = dict(os.environ,
                       PYTHONPATH=str(src), PYTHONHASHSEED=hashseed)
            proc = subprocess.run(
                [sys.executable, "-c", _HASHSEED_SNIPPET],
                capture_output=True, text=True, env=env, timeout=120,
            )
            assert proc.returncode == 0, proc.stderr
            outputs.add(proc.stdout)
        assert len(outputs) == 1
