"""Cache correctness: keying, corruption detection, staleness.

The cache key must move when *anything* that determines a result moves —
cell config, seed, calibration constants, code fingerprint — and a
damaged entry must read as a miss (recompute), never as a crash or a
stale answer.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import pytest

from repro import calibration
from repro.core import cache as cache_mod
from repro.core.cache import (
    ResultCache,
    canonical,
    code_fingerprint,
    default_cache_root,
    task_key,
)
from repro.core.campaign import CampaignCell, run_cell
from repro.devices.models import VisionPro


def _probe(seed: int = 0) -> int:
    return seed


class TestTaskKey:
    def test_deterministic(self):
        assert task_key(_probe, {"seed": 1}) == task_key(_probe, {"seed": 1})

    def test_changes_with_kwargs(self):
        assert task_key(_probe, {"seed": 1}) != task_key(_probe, {"seed": 2})

    def test_changes_with_function(self):
        assert task_key(_probe, {"seed": 1}) != task_key(run_cell, {"seed": 1})

    def test_changes_with_cell_config(self):
        a = CampaignCell("Zoom", 2, duration_s=5.0, repeats=1)
        b = CampaignCell("Zoom", 3, duration_s=5.0, repeats=1)
        c = CampaignCell("Webex", 2, duration_s=5.0, repeats=1)
        keys = {task_key(run_cell, {"cell": cell, "repeat": 0, "seed": 0})
                for cell in (a, b, c)}
        assert len(keys) == 3

    def test_changes_with_calibration_constant(self, monkeypatch):
        before = task_key(_probe, {"seed": 0})
        monkeypatch.setattr(calibration, "TARGET_FPS", 120)
        assert task_key(_probe, {"seed": 0}) != before

    def test_changes_with_calibration_version(self, monkeypatch):
        before = task_key(_probe, {"seed": 0})
        monkeypatch.setattr(calibration, "CALIBRATION_VERSION", 999)
        assert task_key(_probe, {"seed": 0}) != before

    def test_changes_with_code_fingerprint(self, monkeypatch):
        before = task_key(_probe, {"seed": 0})
        monkeypatch.setattr(cache_mod, "_CODE_FINGERPRINT", "f" * 64)
        assert task_key(_probe, {"seed": 0}) != before

    def test_code_fingerprint_is_memoized_sha256(self):
        first = code_fingerprint()
        assert len(first) == 64
        assert code_fingerprint() == first


@dataclass(frozen=True)
class _Config:
    threshold: float = 0.5


class TestCanonical:
    def test_primitives_pass_through(self):
        assert canonical(None) is None
        assert canonical(3) == 3
        assert canonical(1.5) == 1.5
        assert canonical("x") == "x"
        assert canonical(True) is True

    def test_tuples_become_lists(self):
        assert canonical((1, 2, (3,))) == [1, 2, [3]]

    def test_mapping_keys_sorted(self):
        assert (json.dumps(canonical({"b": 1, "a": 2}))
                == json.dumps(canonical(dict([("a", 2), ("b", 1)]))))

    def test_callable_becomes_qualname(self):
        assert canonical(VisionPro) == {
            "__callable__": "repro.devices.models.VisionPro"
        }

    def test_dataclass_tagged_with_type(self):
        out = canonical(_Config())
        assert out["threshold"] == 0.5
        assert out["__dataclass__"].endswith("_Config")

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            canonical(object())


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ab" * 32, {"value": [1, 2, 3]})
        assert cache.get("ab" * 32) == {"value": [1, 2, 3]}
        assert cache.stats.hits == 1 and cache.stats.stores == 1

    def test_miss_on_empty(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("cd" * 32) is None
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate() == 0.0

    def test_truncated_entry_recomputed_not_crashed(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ef" * 32
        cache.put(key, {"value": 42})
        path = cache.path_for(key)
        path.write_text(path.read_text()[:10])  # simulate torn write
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1
        assert not path.exists()  # damaged entry evicted
        cache.put(key, {"value": 42})  # recompute path works
        assert cache.get(key) == {"value": 42}

    def test_tampered_payload_fails_checksum(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "01" * 32
        cache.put(key, {"value": 1})
        path = cache.path_for(key)
        entry = json.loads(path.read_text())
        entry["payload"]["value"] = 2  # bit-flip without updating checksum
        path.write_text(json.dumps(entry))
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1

    def test_entry_under_wrong_key_not_served(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("aa" * 32, {"value": 1})
        src = cache.path_for("aa" * 32)
        dst = cache.path_for("bb" * 32)
        dst.parent.mkdir(parents=True, exist_ok=True)
        dst.write_text(src.read_text())  # stale entry renamed into place
        assert cache.get("bb" * 32) is None
        assert cache.stats.corrupt == 1

    def test_len_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert len(cache) == 0
        for i in range(3):
            cache.put(f"{i:02d}" * 32, i)
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_env_override_of_default_root(self, monkeypatch, tmp_path):
        monkeypatch.setenv(cache_mod.CACHE_DIR_ENV, str(tmp_path / "alt"))
        assert default_cache_root() == tmp_path / "alt"

    def test_crash_between_write_and_rename_leaves_cache_consistent(
        self, tmp_path, monkeypatch
    ):
        """Simulated power cut inside ``put``: the entry file is either
        the complete old version or absent — never half-written."""
        import os as os_mod

        cache = ResultCache(tmp_path)
        key = "23" * 32
        cache.put(key, {"value": "old"})

        def crash(src, dst):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr(os_mod, "replace", crash)
        with pytest.raises(OSError, match="simulated crash"):
            cache.put(key, {"value": "new"})
        monkeypatch.undo()
        # The old entry survived untouched, and no temp orphan remains
        # (put cleans up after itself even when the rename fails).
        assert cache.get(key) == {"value": "old"}
        assert list(tmp_path.rglob("*.tmp.*")) == []

    def test_orphan_temp_files_never_read_and_swept_by_clear(
        self, tmp_path
    ):
        """A crash can strand a ``*.tmp.<pid>`` file; ``get`` must not
        read it and ``clear`` must remove it."""
        cache = ResultCache(tmp_path)
        key = "45" * 32
        cache.put(key, {"value": 7})
        orphan = cache.path_for(key).with_suffix(".tmp.99999")
        orphan.write_text('{"half": "writt')  # torn mid-write
        assert cache.get(key) == {"value": 7}
        assert cache.stats.corrupt == 0  # orphan never even considered
        cache.clear()
        assert not orphan.exists()

    def test_stale_result_never_served_after_config_change(self, tmp_path):
        """The end-to-end staleness property: a changed cell recomputes."""
        cache = ResultCache(tmp_path)
        cell_a = CampaignCell("Zoom", 2, duration_s=5.0, repeats=1)
        key_a = task_key(run_cell, {"cell": cell_a, "repeat": 0, "seed": 0})
        cache.put(key_a, {"poisoned": True})
        cell_b = CampaignCell("Zoom", 2, duration_s=6.0, repeats=1)
        key_b = task_key(run_cell, {"cell": cell_b, "repeat": 0, "seed": 0})
        assert key_a != key_b
        assert cache.get(key_b) is None


class TestOrphanSweepAndGc:
    """ISSUE 6 satellites: orphan sweep on open, `gc`, `disk_stats`."""

    def _strand_orphan(self, tmp_path, age_s: float = 1e6):
        import os
        import time as time_mod

        cache = ResultCache(tmp_path, sweep_orphans=False)
        key = "67" * 32
        cache.put(key, {"value": 1})
        orphan = cache.path_for(key).with_suffix(".tmp.12345-0-deadbeef")
        orphan.write_text('{"torn": tru')
        old = time_mod.time() - age_s
        os.utime(orphan, (old, old))
        return cache, key, orphan

    def test_stale_orphans_swept_on_open(self, tmp_path):
        """A crashed worker's temp file disappears when the cache is
        next opened — not only on clear()."""
        _, key, orphan = self._strand_orphan(tmp_path)
        reopened = ResultCache(tmp_path)
        assert not orphan.exists()
        assert reopened.stats.orphans_swept == 1
        assert reopened.get(key) == {"value": 1}  # real entry untouched

    def test_fresh_orphans_survive_open(self, tmp_path):
        """A temp file younger than the TTL may belong to a live writer
        on another host: opening the cache must leave it alone."""
        _, _, orphan = self._strand_orphan(tmp_path, age_s=0.0)
        ResultCache(tmp_path)
        assert orphan.exists()

    def test_gc_sweeps_orphans_and_evicts_corrupt_entries(self, tmp_path):
        cache, key, orphan = self._strand_orphan(tmp_path)
        bad = tmp_path / ("89" * 32 + ".json")
        bad.write_text('{"not": "a cache entry"}')
        report = cache.gc(orphan_ttl_s=0.0)
        assert report["orphans"] == 1
        assert report["evicted"] == 1
        assert report["checked"] == 2
        assert not orphan.exists()
        assert not bad.exists()
        assert cache.get(key) == {"value": 1}

    def test_disk_stats_counts_entries_bytes_orphans(self, tmp_path):
        cache, key, orphan = self._strand_orphan(tmp_path)
        stats = cache.disk_stats()
        assert stats["entries"] == 1
        assert stats["orphans"] == 1
        assert stats["bytes"] >= cache.path_for(key).stat().st_size

    def test_concurrent_put_temp_names_never_collide(self, tmp_path):
        """Distributed workers share the store: temp names must be
        unique even across processes with colliding pids."""
        cache = ResultCache(tmp_path, sweep_orphans=False)
        key = "ab" * 32
        for _ in range(50):
            cache.put(key, {"value": 1})
        # Repeated puts never trip over a stale temp file: exactly one
        # entry, zero strays.
        assert cache.disk_stats()["entries"] == 1
        assert cache.disk_stats()["orphans"] == 0


class TestCacheCli:
    def test_cache_stats_and_gc_commands(self, tmp_path, capsys):
        from repro.cli import main

        cache = ResultCache(tmp_path, sweep_orphans=False)
        cache.put("cd" * 32, {"value": 2})
        orphan = cache.path_for("cd" * 32).with_suffix(".tmp.1-2-ff")
        orphan.write_text("torn")

        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries    : 1" in out
        assert "orphans    : 1" in out

        assert main(["cache", "gc", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "orphans    : 1 temp file(s) swept" in out
        assert not orphan.exists()

        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        assert "orphans    : 0" in capsys.readouterr().out
