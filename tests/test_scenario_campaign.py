"""Scenario compiler + campaign runner: execution, determinism, caching."""

from __future__ import annotations

import json

import pytest

from repro.core.cache import ResultCache
from repro.core.journal import RunJournal
from repro.scenario.campaign import (
    QOE_DIMENSIONS,
    ScenarioCampaignResult,
    run_batch,
)
from repro.scenario.compiler import run_scenario_cell
from repro.scenario.spec import (
    CrossTrafficSpec,
    FaultSpec,
    ParticipantSpec,
    ScenarioSpec,
)


def _spec(name="cell", duration_s=4.0, **overrides) -> ScenarioSpec:
    kwargs = dict(
        name=name,
        profile="Zoom",
        topology="p2p",
        duration_s=duration_s,
        seed=0,
        participants=(
            ParticipantSpec(device="vision-pro", city="san jose"),
            ParticipantSpec(device="macbook", city="dallas"),
        ),
    )
    kwargs.update(overrides)
    return ScenarioSpec(**kwargs)


def _canonical(records) -> str:
    return json.dumps(records, sort_keys=True)


class TestCompiler:
    def test_session_record_shape(self):
        record = run_scenario_cell(_spec().to_dict())
        for field in ScenarioCampaignResult.FIELDS:
            assert field in record
        assert record["topology"] == "p2p"
        assert record["n_participants"] == 2
        assert 0.0 <= record["qoe_min"] <= record["qoe"] <= 1.0
        for dim in QOE_DIMENSIONS:
            assert 0.0 <= record[f"qoe_{dim}"] <= 1.0
        assert record["worst_dimension"] in QOE_DIMENSIONS

    def test_cell_is_deterministic(self):
        spec = _spec(faults=FaultSpec(scenario="brownout", region_index=1),
                     duration_s=6.0).to_dict()
        assert _canonical(run_scenario_cell(spec)) == _canonical(
            run_scenario_cell(spec))

    def test_standard_gauntlet_attaches_five_faults(self):
        record = run_scenario_cell(
            _spec(duration_s=12.0,
                  faults=FaultSpec(scenario="standard")).to_dict())
        assert record["fault_scenario"] == "standard"
        assert record["fault_events"] == 5
        clean = run_scenario_cell(_spec(duration_s=12.0).to_dict())
        assert clean["fault_events"] == 0
        assert record["qoe"] < clean["qoe"]

    def test_churn_blacks_out_the_window(self):
        churny = _spec(name="churn", participants=(
            ParticipantSpec(device="vision-pro", city="san jose"),
            ParticipantSpec(device="macbook", city="dallas",
                            arrives_s=2.0),
        ), duration_s=4.0)
        record = run_scenario_cell(churny.to_dict())
        clean = run_scenario_cell(_spec().to_dict())
        # A late joiner contributes no media for half the call.
        assert record["fault_events"] == 1
        assert record["availability_mean"] < clean["availability_mean"]
        assert record["qoe_presence"] < clean["qoe_presence"]

    def test_cross_traffic_flows_counted(self):
        record = run_scenario_cell(_spec(cross_traffic=(
            CrossTrafficSpec(kind="bulk", source=1, rate_mbps=60.0),
        )).to_dict())
        assert record["cross_traffic_flows"] == 1

    def test_multi_sfu_fast_path(self):
        spec = ScenarioSpec(name="fan", profile="FaceTime",
                            topology="multi-sfu", duration_s=5.0, seed=2,
                            fanout=12)
        record = run_scenario_cell(spec.to_dict())
        assert record["topology"] == "multi-sfu"
        assert record["n_participants"] == 12
        assert "delivered_egress_mbps" in record
        assert 0.0 <= record["qoe"] <= 1.0
        assert _canonical(record) == _canonical(
            run_scenario_cell(spec.to_dict()))


class TestCampaign:
    def _batch_specs(self):
        return [
            _spec(name="a"),
            _spec(name="b", profile="Webex", topology="sfu"),
            ScenarioSpec(name="c", profile="FaceTime",
                         topology="multi-sfu", duration_s=4.0, seed=1,
                         fanout=8),
        ]

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            run_batch([_spec(name="x"), _spec(name="x")])

    def test_records_in_spec_order(self):
        result = run_batch(self._batch_specs())
        assert [r["name"] for r in result.records] == ["a", "b", "c"]
        assert len(result) == 3
        assert result.record("b")["profile"] == "Webex"
        with pytest.raises(KeyError):
            result.record("zzz")

    def test_cached_resume_is_byte_identical(self, tmp_path):
        specs = self._batch_specs()
        cache = ResultCache(tmp_path / "cache")
        journal = tmp_path / "run.jsonl"
        with RunJournal(journal) as j:
            first = run_batch(specs, cache=cache, journal=j)
        with RunJournal(journal) as j:
            replay = run_batch(specs, cache=cache, journal=j, resume=True)
        assert _canonical(first.records) == _canonical(replay.records)
        # Cache-only replay (no journal) must also match.
        cached = run_batch(specs, cache=cache)
        assert _canonical(first.records) == _canonical(cached.records)

    def test_result_helpers(self, tmp_path):
        result = run_batch(self._batch_specs())
        worst = result.worst()
        assert worst["qoe"] == min(r["qoe"] for r in result.records)
        means = result.dimension_means()
        assert set(means) == set(QOE_DIMENSIONS)
        assert all(0.0 <= v <= 1.0 for v in means.values())
        table = result.format_table()
        assert "a" in table and "worst-dim" in table
        csv_path = tmp_path / "out.csv"
        result.to_csv(csv_path)
        lines = csv_path.read_text().strip().splitlines()
        assert lines[0] == ",".join(ScenarioCampaignResult.FIELDS)
        assert len(lines) == 1 + len(result)

    def test_empty_result_raises(self):
        empty = ScenarioCampaignResult(records=[])
        with pytest.raises(ValueError):
            empty.worst()
        with pytest.raises(ValueError):
            empty.dimension_means()
