"""Scenario DSL: spec validation, JSON round trip, generator determinism."""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

from repro.scenario.generator import (
    DISTRIBUTIONS,
    ScenarioDistribution,
    ScenarioGenerator,
    to_jsonl,
)
from repro.scenario.spec import (
    CITIES,
    FAULT_SCENARIOS,
    TOPOLOGIES,
    CrossTrafficSpec,
    FaultSpec,
    ParticipantSpec,
    ScenarioSpec,
)


def _two_party(profile: str = "Zoom", **overrides) -> ScenarioSpec:
    kwargs = dict(
        name="t",
        profile=profile,
        topology="p2p",
        duration_s=12.0,
        seed=0,
        participants=(
            ParticipantSpec(device="vision-pro", city="san jose"),
            ParticipantSpec(device="macbook", city="dallas"),
        ),
    )
    kwargs.update(overrides)
    return ScenarioSpec(**kwargs)


class TestParticipantSpec:
    def test_rejects_unknown_device_and_city(self):
        with pytest.raises(ValueError, match="unknown device"):
            ParticipantSpec(device="quest", city="san jose")
        with pytest.raises(ValueError, match="unknown city"):
            ParticipantSpec(device="ipad", city="paris")

    def test_rejects_inverted_churn_window(self):
        with pytest.raises(ValueError, match="departs_s"):
            ParticipantSpec(device="ipad", city="miami",
                            arrives_s=5.0, departs_s=5.0)
        with pytest.raises(ValueError, match="arrives_s"):
            ParticipantSpec(device="ipad", city="miami", arrives_s=-1.0)


class TestCrossTrafficSpec:
    def test_rejects_bad_kind_rate_window(self):
        with pytest.raises(ValueError, match="unknown cross-traffic"):
            CrossTrafficSpec(kind="udp-flood", source=0, rate_mbps=10.0)
        with pytest.raises(ValueError, match="rate"):
            CrossTrafficSpec(kind="bulk", source=0, rate_mbps=0.0)
        with pytest.raises(ValueError, match="stop_s"):
            CrossTrafficSpec(kind="bulk", source=0, rate_mbps=10.0,
                             start_s=4.0, stop_s=3.0)


class TestFaultSpec:
    def test_catalog_plus_standard(self):
        for name in FAULT_SCENARIOS:
            if name == "none":
                FaultSpec(scenario=name)
            else:
                FaultSpec(scenario=name, region_index=1, n_regions=3)
        with pytest.raises(ValueError, match="unknown fault"):
            FaultSpec(scenario="earthquake")
        with pytest.raises(ValueError, match="region_index"):
            FaultSpec(scenario="brownout", region_index=3, n_regions=3)


class TestScenarioSpecValidation:
    def test_topology_must_match_profile_behavior(self):
        # Zoom two-party is P2P; declaring sfu is a lie the spec rejects.
        with pytest.raises(ValueError, match="peer-to-peer"):
            _two_party("Zoom", topology="sfu")
        # Webex never goes P2P.
        with pytest.raises(ValueError, match="'sfu'"):
            _two_party("Webex")
        _two_party("Webex", topology="sfu")  # the truthful declaration

    def test_facetime_both_headsets_is_relayed_spatial(self):
        spec = ScenarioSpec(
            name="spatial", profile="FaceTime", topology="sfu",
            duration_s=10.0, seed=1,
            participants=(
                ParticipantSpec(device="vision-pro", city="seattle"),
                ParticipantSpec(device="vision-pro", city="chicago"),
            ),
        )
        assert spec.n_users == 2

    def test_spatial_persona_cap(self):
        members = tuple(
            ParticipantSpec(device="vision-pro", city=CITIES[i])
            for i in range(6)
        )
        with pytest.raises(ValueError, match="caps spatial"):
            ScenarioSpec(name="big", profile="FaceTime", topology="sfu",
                         duration_s=10.0, seed=0, participants=members)

    def test_initiator_cannot_churn(self):
        with pytest.raises(ValueError, match="initiator"):
            _two_party("Zoom", participants=(
                ParticipantSpec(device="vision-pro", city="san jose",
                                arrives_s=2.0),
                ParticipantSpec(device="macbook", city="dallas"),
            ))

    def test_churn_window_must_fit_duration(self):
        with pytest.raises(ValueError, match="arrives after"):
            _two_party("Zoom", participants=(
                ParticipantSpec(device="vision-pro", city="san jose"),
                ParticipantSpec(device="macbook", city="dallas",
                                arrives_s=20.0),
            ))
        with pytest.raises(ValueError, match="departs after"):
            _two_party("Zoom", participants=(
                ParticipantSpec(device="vision-pro", city="san jose"),
                ParticipantSpec(device="macbook", city="dallas",
                                departs_s=15.0),
            ))

    def test_cross_traffic_source_must_exist(self):
        with pytest.raises(ValueError, match="names participant 2"):
            _two_party("Zoom", cross_traffic=(
                CrossTrafficSpec(kind="bulk", source=2, rate_mbps=50.0),
            ))

    def test_standard_gauntlet_needs_room(self):
        with pytest.raises(ValueError, match="standard disturbance"):
            _two_party("Zoom", duration_s=8.0,
                       faults=FaultSpec(scenario="standard"))

    def test_multi_sfu_constraints(self):
        spec = ScenarioSpec(name="fanout", profile="FaceTime",
                            topology="multi-sfu", duration_s=6.0, seed=0,
                            fanout=16)
        assert spec.n_users == 16
        with pytest.raises(ValueError, match="fanout >= 2"):
            ScenarioSpec(name="f", profile="FaceTime",
                         topology="multi-sfu", duration_s=6.0, seed=0)
        with pytest.raises(ValueError, match="FaceTime only"):
            ScenarioSpec(name="f", profile="Zoom", topology="multi-sfu",
                         duration_s=6.0, seed=0, fanout=8)
        with pytest.raises(ValueError, match="fault injector"):
            ScenarioSpec(name="f", profile="FaceTime",
                         topology="multi-sfu", duration_s=6.0, seed=0,
                         fanout=8, faults=FaultSpec(scenario="brownout",
                                                    region_index=0))

    def test_fanout_rejected_for_sessions(self):
        with pytest.raises(ValueError, match="only meaningful"):
            _two_party("Zoom", fanout=4)


class TestRoundTrip:
    def test_dict_and_json_round_trip_every_topology(self):
        specs = [
            _two_party("Zoom"),
            _two_party("Webex", topology="sfu", cross_traffic=(
                CrossTrafficSpec(kind="burst", source=1, rate_mbps=80.0,
                                 start_s=2.0, stop_s=9.0, seed_salt=1),
            ), faults=FaultSpec(scenario="brownout", region_index=2)),
            ScenarioSpec(name="fanout", profile="FaceTime",
                         topology="multi-sfu", duration_s=6.0, seed=3,
                         fanout=24),
        ]
        for spec in specs:
            assert ScenarioSpec.from_dict(spec.to_dict()) == spec
            assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_unknown_keys_rejected(self):
        payload = _two_party("Zoom").to_dict()
        payload["bitrate"] = 5
        with pytest.raises(ValueError, match="unknown keys"):
            ScenarioSpec.from_dict(payload)

    def test_canonical_json_is_sorted_and_compact(self):
        text = _two_party("Zoom").to_json()
        assert ": " not in text and ", " not in text
        keys = list(json.loads(text))
        assert keys == sorted(keys)


class TestGeneratorDeterminism:
    def test_same_seed_same_bytes(self):
        for dist in DISTRIBUTIONS.values():
            a = to_jsonl(ScenarioGenerator(7, dist).batch(12))
            b = to_jsonl(ScenarioGenerator(7, dist).batch(12))
            assert a == b
            assert a != to_jsonl(ScenarioGenerator(8, dist).batch(12))

    def test_index_independence(self):
        gen = ScenarioGenerator(7, DISTRIBUTIONS["paper-calls"])
        # Generating out of order, or one index alone, changes nothing.
        alone = gen.generate(5)
        in_batch = gen.batch(12)[5]
        assert alone == in_batch
        assert gen.batch(3, start=4)[1] == alone

    def test_cross_process_bytes(self):
        script = (
            "import sys; sys.path.insert(0, 'src')\n"
            "from repro.scenario.generator import (DISTRIBUTIONS,"
            " ScenarioGenerator, to_jsonl)\n"
            "gen = ScenarioGenerator(7, DISTRIBUTIONS['paper-calls'])\n"
            "sys.stdout.write(to_jsonl(gen.batch(10)))\n"
        )
        from pathlib import Path

        root = Path(__file__).resolve().parents[1]
        runs = [
            subprocess.run([sys.executable, "-c", script], cwd=root,
                           capture_output=True, text=True, check=True).stdout
            for _ in range(2)
        ]
        local = to_jsonl(
            ScenarioGenerator(7, DISTRIBUTIONS["paper-calls"]).batch(10))
        assert runs[0] == runs[1] == local

    def test_generated_specs_are_valid_and_round_trip(self):
        for dist in DISTRIBUTIONS.values():
            for spec in ScenarioGenerator(3, dist).batch(20):
                assert spec.topology in TOPOLOGIES
                assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_distribution_shapes(self):
        calls = ScenarioGenerator(0, DISTRIBUTIONS["paper-calls"]).batch(30)
        assert all(2 <= s.n_users <= 5 for s in calls)
        assert all(s.participants[0].device == "vision-pro" for s in calls)
        churny = ScenarioGenerator(0, DISTRIBUTIONS["churn-heavy"]).batch(30)
        churned = sum(
            1 for s in churny for p in s.participants[1:]
            if p.arrives_s > 0.0 or p.departs_s is not None
        )
        assert churned > 0
        stormy = ScenarioGenerator(0, DISTRIBUTIONS["storm-heavy"]).batch(10)
        assert all(len(s.cross_traffic) >= 1 for s in stormy)
        fan = ScenarioGenerator(0, DISTRIBUTIONS["large-sfu"]).batch(10)
        assert all(s.topology == "multi-sfu" and 8 <= s.fanout <= 48
                   for s in fan)

    def test_distribution_validation(self):
        with pytest.raises(ValueError, match="participants_range"):
            ScenarioDistribution(
                name="bad", profiles=("Zoom",), participants_range=(1, 3),
                devices=("ipad",), spatial_bias=0.0, churn_probability=0.0,
                storm_probability=0.0, max_storm_flows=0,
                fault_scenarios=("none",), duration_range=(5.0, 10.0),
            )
