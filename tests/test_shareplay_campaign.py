"""SharePlay streams and the automated campaign runner."""

import pytest

from repro.core.campaign import Campaign, CampaignCell, CampaignRecord
from repro.core.testbed import multi_user_testbed
from repro.experiments import shareplay
from repro.netsim.capture import Direction
from repro.vca.profiles import PROFILES
from repro.vca.shareplay import (
    SHAREPLAY_SRC_PORT,
    SharedContentProfile,
    SharedContentSource,
)


class TestSharedContentSource:
    def _run(self, profile, duration_s=4.0):
        testbed = multi_user_testbed(3)
        session = testbed.session(PROFILES["FaceTime"], seed=0)
        source = SharedContentSource(profile, seed=0)
        target, port = session._media_target(0)
        source.attach(session.sim, session.host_of("U1"), target, port)
        result = session.run(duration_s)
        return source, result, duration_s

    def test_movie_rate_near_profile(self):
        source, result, duration = self._run(SharedContentProfile.movie())
        records = result.capture_of("U1").filter(direction=Direction.UPLINK)
        share = [r for r in records if r.src_port == SHAREPLAY_SRC_PORT]
        mbps = sum(r.wire_bytes for r in share) * 8 / duration / 1e6
        assert mbps == pytest.approx(8.0, rel=0.15)

    def test_content_forwarded_to_viewers(self):
        source, result, duration = self._run(SharedContentProfile.movie())
        down = result.capture_of("U2").filter(direction=Direction.DOWNLINK)
        share = [r for r in down if r.src_port == SHAREPLAY_SRC_PORT]
        assert share  # the SFU fans the content out like any stream

    def test_persona_coexists_on_fast_ap(self):
        source, result, _ = self._run(SharedContentProfile.game())
        receiver = result.receiver_of("U2")
        stats = receiver.stats[result.addresses["U1"]]
        assert stats.availability() > 0.97

    def test_whiteboard_is_light(self):
        source, result, duration = self._run(
            SharedContentProfile.whiteboard()
        )
        records = result.capture_of("U1").filter(direction=Direction.UPLINK)
        share = [r for r in records if r.src_port == SHAREPLAY_SRC_PORT]
        mbps = sum(r.wire_bytes for r in share) * 8 / duration / 1e6
        assert mbps < 0.5

    def test_invalid_profile(self):
        with pytest.raises(ValueError):
            SharedContentSource(SharedContentProfile(
                SharedContentProfile.movie().kind, 0.0, 24, 0.2
            ))


class TestSharePlayExperiment:
    @pytest.fixture(scope="class")
    def outcomes(self):
        return shareplay.run(duration_s=6.0, seed=0)

    def test_all_content_kinds_measured(self, outcomes):
        assert set(outcomes) == {"movie", "whiteboard", "game"}

    def test_content_dominates_bandwidth(self, outcomes):
        # A movie is an order of magnitude above the persona's 0.68 Mbps.
        assert outcomes["movie"].host_uplink_mbps > 5.0
        assert outcomes["whiteboard"].host_uplink_mbps < 2.0

    def test_persona_survives_unconstrained(self, outcomes):
        for outcome in outcomes.values():
            assert outcome.persona_survives_unconstrained

    def test_heavy_content_starves_persona_on_tight_uplink(self, outcomes):
        # The fixed-rate semantic stream cannot defend itself against a
        # bulky shared stream on a 2 Mbps uplink (no rate adaptation).
        assert outcomes["game"].shaped_persona_availability < 0.9
        assert outcomes["whiteboard"].shaped_persona_availability > 0.97

    def test_table_renders(self, outcomes):
        assert "movie" in shareplay.format_table(outcomes)


class TestCampaign:
    def test_cell_validation(self):
        with pytest.raises(ValueError):
            CampaignCell("Skype", 2)
        with pytest.raises(ValueError):
            CampaignCell("Zoom", 1)
        with pytest.raises(ValueError):
            CampaignCell("Zoom", 2, duration_s=0)

    def test_device_factory_must_return_device(self):
        # Regression: a factory returning a non-Device used to slip
        # through __post_init__ and blow up mid-campaign instead.
        with pytest.raises(ValueError, match="must return a Device"):
            CampaignCell("Zoom", 2, device_factory=lambda: "not a device")
        with pytest.raises(ValueError, match="callable"):
            CampaignCell("Zoom", 2, device_factory="VisionPro")

    def test_grid_skips_over_cap_facetime(self):
        campaign = Campaign.grid(["FaceTime", "Webex"], [2, 6],
                                 duration_s=1.0, repeats=1)
        facetime_counts = [
            c.n_users for c in campaign.cells if c.vca == "FaceTime"
        ]
        webex_counts = [
            c.n_users for c in campaign.cells if c.vca == "Webex"
        ]
        assert facetime_counts == [2]       # 6 exceeds the persona cap
        assert webex_counts == [2, 6]       # 2D personas have no cap

    def test_empty_campaign_rejected(self):
        with pytest.raises(ValueError):
            Campaign([])

    def test_run_produces_one_record_per_repeat(self):
        campaign = Campaign(
            [CampaignCell("Zoom", 2, duration_s=3.0, repeats=2)]
        )
        records = campaign.run()
        assert len(records) == 2
        assert all(isinstance(r, CampaignRecord) for r in records)
        assert records[0].seed != records[1].seed

    def test_records_capture_the_findings(self):
        campaign = Campaign([
            CampaignCell("FaceTime", 2, duration_s=3.0, repeats=1),
            CampaignCell("Webex", 2, duration_s=3.0, repeats=1),
        ])
        by_vca = {r.vca: r for r in campaign.run()}
        assert by_vca["FaceTime"].protocol == "quic"
        assert by_vca["FaceTime"].persona_kind == "spatial"
        assert by_vca["Webex"].protocol == "rtp"
        assert by_vca["FaceTime"].uplink_mbps_mean < \
            by_vca["Webex"].uplink_mbps_mean

    def test_csv_export(self, tmp_path):
        campaign = Campaign(
            [CampaignCell("Zoom", 2, duration_s=2.0, repeats=1)]
        )
        campaign.run()
        path = tmp_path / "campaign.csv"
        campaign.to_csv(path)
        lines = path.read_text().splitlines()
        assert lines[0].startswith("vca,n_users")
        assert len(lines) == 2

    def test_csv_before_run_rejected(self, tmp_path):
        campaign = Campaign(
            [CampaignCell("Zoom", 2, duration_s=2.0, repeats=1)]
        )
        with pytest.raises(RuntimeError):
            campaign.to_csv(tmp_path / "x.csv")

    def test_summary_groups(self):
        campaign = Campaign([
            CampaignCell("Zoom", 2, duration_s=4.0, repeats=2),
        ])
        campaign.run()
        summary = campaign.summary_by("vca")
        assert summary["Zoom"]["sessions"] == 2.0
        assert summary["Zoom"]["uplink_mbps_mean"] > 1.0

    def test_progress_callback(self):
        seen = []
        campaign = Campaign(
            [CampaignCell("Zoom", 2, duration_s=2.0, repeats=2)]
        )
        campaign.run(progress=seen.append)
        assert len(seen) == 2
