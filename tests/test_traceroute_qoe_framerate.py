"""tcptraceroute, the QoE model, and the frame-rate experiment."""

import pytest

from repro.geo.latency import rtt_ms
from repro.geo.regions import city
from repro.geo.traceroute import TcpTraceroute, synthesize_path
from repro.vca.qoe import (
    ONE_WAY_DELAY_THRESHOLD_MS,
    QoeFactors,
    delay_factor,
    frame_rate_factor,
    meets_high_qoe_bar,
    quality_factor,
    score,
)


class TestPathSynthesis:
    def test_final_hop_matches_end_to_end_rtt(self):
        src, dst = city("san jose"), city("washington")
        hops = synthesize_path(src, dst)
        assert hops[-1].cumulative_rtt_ms == pytest.approx(rtt_ms(src, dst))

    def test_cumulative_rtts_monotone(self):
        hops = synthesize_path(city("san jose"), city("miami"))
        rtts = [h.cumulative_rtt_ms for h in hops]
        assert rtts == sorted(rtts)

    def test_longer_paths_have_more_hops(self):
        short = synthesize_path(city("dallas"), city("kansas"))
        long = synthesize_path(city("san jose"), city("new york"))
        assert len(long) > len(short)

    def test_access_hops_present_both_sides(self):
        hops = synthesize_path(city("dallas"), city("chicago"))
        names = [h.name for h in hops]
        assert names[0].startswith("src-access")
        assert names[-1].startswith("dst-access")


class TestTcpTraceroute:
    def test_destination_rtt_near_model(self):
        src, dst = city("san jose"), city("washington")
        tracer = TcpTraceroute(drop_prob=0.0)
        hops = tracer.run(src, dst, seed=0)
        assert tracer.destination_rtt_ms(hops) == pytest.approx(
            rtt_ms(src, dst), abs=4.0
        )

    def test_silent_hops_render_stars(self):
        tracer = TcpTraceroute(drop_prob=1.0)
        hops = tracer.run(city("san jose"), city("washington"), seed=1)
        output = tracer.format_output(hops)
        assert "* * *" in output

    def test_destination_always_answers(self):
        # Even with every intermediate hop silent, the endpoint responds.
        tracer = TcpTraceroute(drop_prob=1.0)
        hops = tracer.run(city("san jose"), city("dallas"), seed=2)
        assert hops[-1].rtts_ms

    def test_probe_count(self):
        tracer = TcpTraceroute(drop_prob=0.0, probes_per_ttl=5)
        hops = tracer.run(city("dallas"), city("chicago"), seed=0)
        assert all(len(h.rtts_ms) == 5 for h in hops)

    def test_invalid_probe_count(self):
        with pytest.raises(ValueError):
            TcpTraceroute(probes_per_ttl=0).run(
                city("dallas"), city("chicago")
            )

    def test_no_answer_raises(self):
        from repro.geo.traceroute import TracerouteHop

        with pytest.raises(ValueError):
            TcpTraceroute.destination_rtt_ms([TracerouteHop(1, "*", [])])


class TestQoeFactors:
    def test_validation(self):
        with pytest.raises(ValueError):
            QoeFactors(-1.0, 1.0, 90.0)
        with pytest.raises(ValueError):
            QoeFactors(10.0, 1.5, 90.0)
        with pytest.raises(ValueError):
            QoeFactors(10.0, 1.0, -90.0)

    def test_delay_factor_flat_below_threshold(self):
        assert delay_factor(50.0) == 1.0
        assert delay_factor(ONE_WAY_DELAY_THRESHOLD_MS) == 1.0

    def test_delay_factor_decays_above(self):
        assert delay_factor(150.0) < 1.0
        assert delay_factor(400.0) < delay_factor(200.0)

    def test_frame_rate_factor_shape(self):
        assert frame_rate_factor(90.0) == 1.0
        assert 0.9 <= frame_rate_factor(75.0) < 1.0
        assert frame_rate_factor(30.0) < 0.5

    def test_quality_diminishing_returns(self):
        # Halving triangles costs far less than half the quality.
        assert quality_factor(0.5) > 0.75
        assert quality_factor(1.0) == 1.0

    def test_availability_gates_everything(self):
        dead = QoeFactors(10.0, 0.0, 90.0, 1.0)
        assert score(dead) == 0.0

    def test_intercontinental_fails_the_bar(self):
        # The paper's Sec. 4.1 point: >100 ms one-way between continents.
        good = QoeFactors(40.0, 1.0, 90.0)
        far = QoeFactors(160.0, 1.0, 90.0)
        assert meets_high_qoe_bar(good)
        assert not meets_high_qoe_bar(far)

    def test_bar_validation(self):
        with pytest.raises(ValueError):
            meets_high_qoe_bar(QoeFactors(1.0, 1.0, 90.0), bar=0.0)


class TestFrameRateExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import framerate

        return framerate.run(duration_s=15.0, seed=0)

    def test_target_held_through_the_cap(self, result):
        for n in (2, 3, 4, 5):
            assert result.reports[n].effective_fps > 85.0

    def test_sixth_user_breaks_the_target(self, result):
        assert result.reports[6].effective_fps < 80.0
        assert result.reports[6].miss_rate > 0.15

    def test_cap_is_justified(self, result):
        assert result.cap_is_justified()

    def test_monotone_degradation(self, result):
        assert result.degrades_monotonically()
