"""Simplified QUIC and TCP-ping probing."""

import pytest
from hypothesis import given, strategies as st

from repro.geo.regions import city
from repro.netsim.engine import Simulator
from repro.netsim.network import Network
from repro.netsim.node import Host
from repro.transport.probing import TcpPingResponder, tcp_ping
from repro.transport.quic import (
    CONNECTION_ID_BYTES,
    QUIC_MAX_PAYLOAD,
    QuicConnection,
    is_quic_datagram,
    parse_header,
)


def make_conn(secret=b"s" * 16):
    return QuicConnection(b"conn0001", secret)


class TestQuicFraming:
    def test_short_header_recognized(self):
        conn = make_conn()
        datagram = conn.protect_frame(b"payload")[0]
        assert is_quic_datagram(datagram)
        header = parse_header(datagram)
        assert not header.long_form
        assert header.dcid == b"conn0001"

    def test_long_header_recognized(self):
        conn = make_conn()
        initial = conn.initial_packet()
        header = parse_header(initial)
        assert header.long_form
        assert header.packet_type == 0  # Initial

    def test_handshake_completes_connection(self):
        conn = make_conn()
        assert not conn.handshake_complete
        conn.handshake_packet()
        assert conn.handshake_complete

    def test_packet_numbers_increase(self):
        conn = make_conn()
        a = parse_header(conn.protect_frame(b"x")[0]).packet_number
        b = parse_header(conn.protect_frame(b"y")[0]).packet_number
        assert b == a + 1

    def test_bad_dcid_length_rejected(self):
        with pytest.raises(ValueError):
            QuicConnection(b"short", b"secret")

    def test_empty_frame_rejected(self):
        with pytest.raises(ValueError):
            make_conn().protect_frame(b"")

    def test_large_frame_fragments(self):
        conn = make_conn()
        frame = b"z" * (QUIC_MAX_PAYLOAD + 100)
        datagrams = conn.protect_frame(frame)
        assert len(datagrams) == 2

    def test_non_quic_bytes_rejected(self):
        with pytest.raises(ValueError):
            parse_header(b"\x80" + b"\x00" * 20)  # RTP-looking


class TestQuicProtection:
    def test_roundtrip(self):
        sender = make_conn()
        receiver = make_conn()
        datagram = sender.protect_frame(b"secret payload")[0]
        assert receiver.unprotect(datagram) == b"secret payload"

    def test_ciphertext_differs_from_plaintext(self):
        conn = make_conn()
        datagram = conn.protect_frame(b"secret payload!!")[0]
        assert b"secret" not in datagram

    def test_wrong_secret_garbles(self):
        sender = make_conn(secret=b"a" * 16)
        eavesdropper = make_conn(secret=b"b" * 16)
        datagram = sender.protect_frame(b"secret payload")[0]
        assert eavesdropper.unprotect(datagram) != b"secret payload"

    def test_wrong_dcid_rejected(self):
        sender = make_conn()
        other = QuicConnection(b"conn0002", b"s" * 16)
        datagram = sender.protect_frame(b"x")[0]
        with pytest.raises(ValueError):
            other.unprotect(datagram)

    @given(st.binary(min_size=1, max_size=3000))
    def test_roundtrip_property(self, frame):
        sender = make_conn()
        receiver = make_conn()
        rebuilt = b"".join(
            receiver.unprotect(d) for d in sender.protect_frame(frame)
        )
        assert rebuilt == frame


class TestTcpPing:
    def _testbed(self):
        sim = Simulator()
        network = Network(sim)
        client = Host("10.0.0.2", city("san jose"), name="client")
        server = Host("17.100.0.1", city("washington"), name="server")
        network.attach(client)
        network.attach(server)
        TcpPingResponder(server)
        return sim, network, client, server

    def test_rtt_matches_path_model(self):
        sim, network, client, server = self._testbed()
        rtts = tcp_ping(sim, client, server.address, count=3)
        expected = 2 * network.one_way_delay_s(
            client.address, server.address
        ) * 1000
        assert len(rtts) == 3
        for rtt in rtts:
            assert rtt == pytest.approx(expected, rel=0.1)

    def test_responder_counts_probes(self):
        sim, network, client, server = self._testbed()
        responder = TcpPingResponder(server, port=8443)
        tcp_ping(sim, client, server.address, count=4, server_port=8443,
                 client_port=52001)
        assert responder.probes_answered == 4

    def test_invalid_count_rejected(self):
        sim, network, client, server = self._testbed()
        with pytest.raises(ValueError):
            tcp_ping(sim, client, server.address, count=0)

    def test_non_probe_payload_ignored(self):
        sim, network, client, server = self._testbed()
        from repro.netsim.packet import IPPROTO_TCP, Packet

        client.bind(52000, lambda p: None)
        client.send(Packet(client.address, server.address, 52000, 443,
                           IPPROTO_TCP, b"GET / HTTP/1.1"))
        sim.run()
        # No SYN-ACK generated for non-SYN payloads.
        assert client.inbox == []
        client.unbind(52000)
