"""RTCP reports, estimators, and RTT computation."""

import pytest
from hypothesis import given, strategies as st

from repro.transport.rtcp import (
    PT_RECEIVER_REPORT,
    PT_SENDER_REPORT,
    ReceiverReport,
    ReceptionEstimator,
    ReportBlock,
    SenderReport,
    parse_rtcp,
    rtt_from_report,
    to_ntp_middle,
)


def block(**overrides):
    defaults = dict(ssrc=7, fraction_lost=10, cumulative_lost=100,
                    highest_sequence=5000, jitter=42, last_sr=123456,
                    delay_since_last_sr=6553)
    defaults.update(overrides)
    return ReportBlock(**defaults)


class TestPackets:
    def test_sender_report_roundtrip(self):
        sr = SenderReport(ssrc=99, ntp_seconds=1234.5, rtp_timestamp=90_000,
                          packet_count=300, byte_count=400_000,
                          blocks=(block(),))
        parsed = parse_rtcp(sr.pack())
        assert isinstance(parsed, SenderReport)
        assert parsed.ssrc == 99
        assert parsed.ntp_seconds == pytest.approx(1234.5, abs=1e-6)
        assert parsed.packet_count == 300
        assert parsed.blocks[0] == block()

    def test_receiver_report_roundtrip(self):
        rr = ReceiverReport(ssrc=5, blocks=(block(), block(ssrc=8)))
        parsed = parse_rtcp(rr.pack())
        assert isinstance(parsed, ReceiverReport)
        assert len(parsed.blocks) == 2
        assert parsed.blocks[1].ssrc == 8

    def test_empty_rr(self):
        parsed = parse_rtcp(ReceiverReport(ssrc=1).pack())
        assert parsed.blocks == ()

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_rtcp(b"\x00\x01")
        with pytest.raises(ValueError):
            parse_rtcp(b"\x00" * 16)  # wrong version bits

    def test_rtcp_length_field_consistent(self):
        packed = SenderReport(1, 1.0, 2, 3, 4).pack()
        length_words = int.from_bytes(packed[2:4], "big")
        assert len(packed) == (length_words + 1) * 4

    def test_loss_rate_fraction(self):
        assert block(fraction_lost=128).loss_rate == pytest.approx(0.5)

    @given(st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=0, max_value=255),
           st.integers(min_value=0, max_value=2**24 - 1))
    def test_block_roundtrip_property(self, ssrc, frac, lost):
        b = block(ssrc=ssrc, fraction_lost=frac, cumulative_lost=lost)
        assert ReportBlock.parse(b.pack()) == b


class TestEstimator:
    def test_no_loss_sequence(self):
        est = ReceptionEstimator(ssrc=1, clock_rate_hz=90_000)
        for i in range(100):
            est.on_rtp(i, i * 3000, i / 30.0)
        assert est.cumulative_lost == 0
        assert est.expected == 100

    def test_gap_counts_as_loss(self):
        est = ReceptionEstimator(ssrc=1, clock_rate_hz=90_000)
        for i in (0, 1, 2, 5, 6):  # 3, 4 lost
            est.on_rtp(i, i * 3000, i / 30.0)
        assert est.cumulative_lost == 2

    def test_sequence_wraparound(self):
        est = ReceptionEstimator(ssrc=1, clock_rate_hz=90_000)
        for i, seq in enumerate((0xFFFE, 0xFFFF, 0x0000, 0x0001)):
            est.on_rtp(seq, i * 3000, i / 30.0)
        assert est.cumulative_lost == 0
        assert est.extended_highest_sequence == 0x10001

    def test_jitter_zero_for_perfect_timing(self):
        est = ReceptionEstimator(ssrc=1, clock_rate_hz=90_000)
        for i in range(50):
            est.on_rtp(i, i * 3000, i / 30.0)  # exactly on schedule
        assert est.jitter_seconds == pytest.approx(0.0, abs=1e-9)

    def test_jitter_grows_with_variance(self):
        import numpy as np

        rng = np.random.default_rng(0)
        est = ReceptionEstimator(ssrc=1, clock_rate_hz=90_000)
        for i in range(200):
            est.on_rtp(i, i * 3000, i / 30.0 + rng.uniform(0, 0.005))
        assert est.jitter_seconds > 0.0005

    def test_report_block_interval_fraction(self):
        est = ReceptionEstimator(ssrc=1, clock_rate_hz=90_000)
        for i in range(10):
            est.on_rtp(i, i * 3000, i / 30.0)
        first = est.make_report_block(1.0)
        assert first.fraction_lost == 0
        # Now lose half of the next interval.
        for i in range(10, 20, 2):
            est.on_rtp(i, i * 3000, i / 30.0)
        second = est.make_report_block(2.0)
        assert second.fraction_lost > 0

    def test_invalid_clock_rate(self):
        with pytest.raises(ValueError):
            ReceptionEstimator(ssrc=1, clock_rate_hz=0)


class TestRttComputation:
    def test_rtt_recovered(self):
        send_time = 100.0
        middle = to_ntp_middle(send_time)
        # Receiver got the SR, waited 0.25 s, then sent its RR; the RR
        # arrives at the sender 0.35 s after the SR left.
        b = block(last_sr=middle, delay_since_last_sr=int(0.25 * 65536))
        rtt = rtt_from_report(b, middle, rr_arrival_s=100.35)
        assert rtt == pytest.approx(0.10, abs=0.001)

    def test_no_sr_seen_returns_none(self):
        b = block(last_sr=0)
        assert rtt_from_report(b, 12345, 10.0) is None

    def test_mismatched_sr_returns_none(self):
        b = block(last_sr=999)
        assert rtt_from_report(b, 12345, 10.0) is None
