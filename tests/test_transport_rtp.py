"""RTP header codec and packetizer."""

import pytest
from hypothesis import given, strategies as st

from repro.transport.rtp import (
    FACETIME_AUDIO_PT,
    FACETIME_VIDEO_PT,
    RTP_HEADER_BYTES,
    RTP_MAX_PAYLOAD,
    PayloadType,
    RtpHeader,
    RtpPacketizer,
    looks_like_rtp,
)


class TestHeader:
    def test_roundtrip(self):
        h = RtpHeader(payload_type=124, sequence=7, timestamp=90000,
                      ssrc=0xDEADBEEF, marker=True)
        assert RtpHeader.parse(h.pack()) == h

    def test_header_is_12_bytes(self):
        h = RtpHeader(1, 2, 3, 4)
        assert len(h.pack()) == RTP_HEADER_BYTES

    def test_version_bits(self):
        packed = RtpHeader(1, 2, 3, 4).pack()
        assert packed[0] >> 6 == 2

    def test_parse_rejects_short_data(self):
        with pytest.raises(ValueError):
            RtpHeader.parse(b"\x80\x00")

    def test_parse_rejects_wrong_version(self):
        data = bytes([0x40]) + b"\x00" * 11
        with pytest.raises(ValueError):
            RtpHeader.parse(data)

    def test_sequence_wraps_16_bits(self):
        h = RtpHeader(1, 0x1FFFF, 3, 4)
        assert RtpHeader.parse(h.pack()).sequence == 0xFFFF

    @given(
        st.integers(min_value=0, max_value=127),
        st.integers(min_value=0, max_value=0xFFFF),
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.booleans(),
    )
    def test_roundtrip_property(self, pt, seq, ts, ssrc, marker):
        h = RtpHeader(pt, seq, ts, ssrc, marker)
        assert RtpHeader.parse(h.pack()) == h


class TestPayloadType:
    def test_range_enforced(self):
        with pytest.raises(ValueError):
            PayloadType(128, "x", 90000)

    def test_facetime_pts_are_dynamic(self):
        # Dynamic RTP payload types live in 96-127.
        assert 96 <= FACETIME_VIDEO_PT.number <= 127
        assert 96 <= FACETIME_AUDIO_PT.number <= 127


class TestPacketizer:
    def test_small_frame_single_packet(self):
        p = RtpPacketizer(FACETIME_VIDEO_PT, ssrc=1)
        datagrams = p.packetize(b"x" * 100, 0)
        assert len(datagrams) == 1
        header = RtpHeader.parse(datagrams[0])
        assert header.marker  # last (only) packet of the frame

    def test_large_frame_fragments(self):
        p = RtpPacketizer(FACETIME_VIDEO_PT, ssrc=1)
        datagrams = p.packetize(b"x" * (RTP_MAX_PAYLOAD * 2 + 10), 0)
        assert len(datagrams) == 3
        markers = [RtpHeader.parse(d).marker for d in datagrams]
        assert markers == [False, False, True]

    def test_sequence_increments_across_frames(self):
        p = RtpPacketizer(FACETIME_VIDEO_PT, ssrc=1)
        first = RtpHeader.parse(p.packetize(b"a", 0)[0]).sequence
        second = RtpHeader.parse(p.packetize(b"b", 1)[0]).sequence
        assert second == (first + 1) & 0xFFFF

    def test_reassembly_preserves_frame(self):
        p = RtpPacketizer(FACETIME_VIDEO_PT, ssrc=9)
        frame = bytes(range(256)) * 12
        datagrams = p.packetize(frame, 0)
        rebuilt = b"".join(d[RTP_HEADER_BYTES:] for d in datagrams)
        assert rebuilt == frame

    def test_empty_frame_rejected(self):
        p = RtpPacketizer(FACETIME_VIDEO_PT, ssrc=1)
        with pytest.raises(ValueError):
            p.packetize(b"", 0)

    def test_timestamp_carried(self):
        p = RtpPacketizer(FACETIME_VIDEO_PT, ssrc=1)
        header = RtpHeader.parse(p.packetize(b"x", 123456)[0])
        assert header.timestamp == 123456


class TestHeuristic:
    def test_rtp_bytes_recognized(self):
        p = RtpPacketizer(FACETIME_VIDEO_PT, ssrc=1)
        assert looks_like_rtp(p.packetize(b"x" * 10, 0)[0])

    def test_short_data_rejected(self):
        assert not looks_like_rtp(b"\x80")

    def test_quic_first_byte_not_rtp(self):
        assert not looks_like_rtp(bytes([0x40]) + b"\x00" * 20)
        assert not looks_like_rtp(bytes([0xC0]) + b"\x00" * 20)
