"""Regression tests for three latent bugs fixed in the VCA layer.

Each test fails on the pre-fix code:

1. **Planner headroom bypass** — ``check_feasibility`` computed its own
   capacity comparisons instead of routing through
   ``BandwidthPlan.fits``, so ``headroom=0`` or ``headroom=1.5`` was
   silently accepted (producing nonsense verdicts) while ``fits()``
   raises; ``max_users_for_capacity`` went further and swallowed the
   bad argument as "zero users fit".

2. **Batch lanes out of range** — ``JitterBuffer.play_batch`` let a
   frame routed to ``lanes[i] >= n_lanes`` grow the bincount silently
   (the report loop only reads ``range(n_lanes)``, so the frame just
   vanished), and a negative lane surfaced as numpy's bincount error.
   Both are caller bugs and now raise the buffer's own ``ValueError``.

3. **Quantile scan** — ``minimal_playout_delay_ms`` scanned the whole
   delay grid at O(n·m); it is now a direct quantile (partition +
   searchsorted) that must return the *identical* grid-snapped value,
   and must not take grid-scan time on big streams.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.devices.models import MacBook, VisionPro
from repro.vca.jitterbuffer import JitterBuffer, minimal_playout_delay_ms
from repro.vca.planner import check_feasibility, max_users_for_capacity
from repro.vca.profiles import PROFILES


class TestPlannerHeadroomValidation:
    def _devices(self):
        return [VisionPro(), MacBook()]

    @pytest.mark.parametrize("headroom", [0.0, -0.5, 1.5])
    def test_check_feasibility_rejects_bad_headroom(self, headroom):
        with pytest.raises(ValueError, match="headroom"):
            check_feasibility(PROFILES["Zoom"], self._devices(),
                              uplink_capacity_mbps=100.0,
                              downlink_capacity_mbps=100.0,
                              headroom=headroom)

    @pytest.mark.parametrize("headroom", [0.0, -0.5, 1.5])
    def test_max_users_rejects_instead_of_returning_zero(self, headroom):
        with pytest.raises(ValueError, match="headroom"):
            max_users_for_capacity(PROFILES["Zoom"], MacBook,
                                   uplink_capacity_mbps=100.0,
                                   downlink_capacity_mbps=100.0,
                                   headroom=headroom)

    def test_verdicts_unchanged_for_valid_headroom(self):
        verdict = check_feasibility(PROFILES["Zoom"], self._devices(),
                                    uplink_capacity_mbps=100.0,
                                    downlink_capacity_mbps=100.0)
        assert verdict.feasible and verdict.limiting_direction is None
        tight = check_feasibility(PROFILES["Zoom"], self._devices(),
                                  uplink_capacity_mbps=0.001,
                                  downlink_capacity_mbps=0.001)
        # Both directions fail: the documented tie goes to the uplink.
        assert not tight.feasible
        assert tight.limiting_direction == "uplink"


class TestPlayBatchLaneValidation:
    def _buffer(self):
        return JitterBuffer(playout_delay_ms=20.0)

    def test_overflowing_lane_raises_not_drops(self):
        send = np.array([0.0, 0.1, 0.2])
        arrival = send + 0.005
        with pytest.raises(ValueError, match=r"lane indices must be in"):
            self._buffer().play_batch(send, arrival,
                                      np.array([0, 1, 2]), n_lanes=2)

    def test_negative_lane_raises_the_buffers_error(self):
        send = np.array([0.0, 0.1])
        arrival = send + 0.005
        with pytest.raises(ValueError, match=r"lane indices must be in"):
            self._buffer().play_batch(send, arrival,
                                      np.array([0, -1]), n_lanes=2)

    def test_valid_lanes_still_match_scalar_path(self):
        rng = np.random.default_rng(0)
        send = np.sort(rng.uniform(0.0, 5.0, size=200))
        arrival = send + rng.uniform(0.0, 0.05, size=200)
        lanes = rng.integers(0, 3, size=200)
        buffer = self._buffer()
        reports = buffer.play_batch(send, arrival, lanes, n_lanes=3)
        for lane in range(3):
            mask = lanes == lane
            scalar = buffer.play(list(zip(send[mask], arrival[mask])))
            assert reports[lane].frames == scalar.frames
            assert reports[lane].late_frames == scalar.late_frames
            # Summation order differs between the two paths; counts are
            # exact, the mean agrees to float precision.
            assert reports[lane].mean_wait_ms == pytest.approx(
                scalar.mean_wait_ms, rel=1e-12)


class TestMinimalPlayoutDelayQuantile:
    @staticmethod
    def _grid_scan(timestamps, late_budget=0.01, resolution_ms=0.5,
                   max_delay_ms=500.0):
        """The original O(n·m) reference implementation."""
        delays_ms = np.arange(0.0, max_delay_ms + resolution_ms,
                              resolution_ms)
        one_way = np.array([a - s for s, a in timestamps]) * 1000.0
        for delay in delays_ms:
            if float(np.mean(one_way > delay)) <= late_budget:
                return float(delay)
        raise ValueError("cannot meet")

    def test_equals_grid_scan_on_random_streams(self):
        rng = np.random.default_rng(7)
        for _ in range(150):
            n = int(rng.integers(1, 60))
            send = np.sort(rng.uniform(0.0, 10.0, size=n))
            arrival = send + rng.gamma(2.0, 0.01, size=n)
            timestamps = list(zip(send, arrival))
            budget = float(rng.choice([0.0, 0.01, 0.05, 1 / 3, 0.5]))
            resolution = float(rng.choice([0.25, 0.5, 1.0]))
            assert minimal_playout_delay_ms(
                timestamps, late_budget=budget, resolution_ms=resolution,
            ) == self._grid_scan(timestamps, late_budget=budget,
                                 resolution_ms=resolution)

    def test_unmeetable_budget_still_raises(self):
        timestamps = [(0.0, 10.0)]  # 10 s one-way
        with pytest.raises(ValueError, match="cannot meet"):
            minimal_playout_delay_ms(timestamps, late_budget=0.0,
                                     max_delay_ms=500.0)
        with pytest.raises(ValueError, match="late budget"):
            minimal_playout_delay_ms(timestamps, late_budget=1.0)

    def test_no_longer_scans_the_grid(self):
        # 40k frames against a 0.01 ms grid whose answer sits at the far
        # end: the old scan walks ~50k grid points x 40k frames (about
        # 2 s); the quantile path is one partition + searchsorted
        # (milliseconds), so half a second is a generous dividing line.
        rng = np.random.default_rng(1)
        send = np.sort(rng.uniform(0.0, 60.0, size=40_000))
        arrival = send + rng.uniform(0.400, 0.499, size=40_000)
        timestamps = list(zip(send, arrival))
        start = time.perf_counter()
        delay = minimal_playout_delay_ms(timestamps, late_budget=0.0,
                                         resolution_ms=0.01)
        elapsed = time.perf_counter() - start
        assert delay >= 400.0
        assert elapsed < 0.5
