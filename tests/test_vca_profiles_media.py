"""VCA profiles and media sources."""

import numpy as np
import pytest

from repro import calibration
from repro.devices.models import MacBook, VisionPro
from repro.geo.regions import city
from repro.netsim.engine import Simulator
from repro.netsim.network import Network
from repro.netsim.node import Host
from repro.transport.quic import is_quic_datagram
from repro.transport.rtp import RtpHeader, looks_like_rtp
from repro.vca.media import (
    AudioSource,
    MeshSource,
    SemanticSource,
    VideoSource,
    quic_connection_for,
)
from repro.vca.profiles import FACETIME, PROFILES, TEAMS, WEBEX, ZOOM, PersonaKind, Protocol


class TestProfiles:
    def test_only_facetime_supports_spatial(self):
        assert FACETIME.supports_spatial
        for profile in (ZOOM, WEBEX, TEAMS):
            assert not profile.supports_spatial

    def test_spatial_requires_all_vision_pro(self):
        avp, mac = VisionPro(), MacBook()
        assert FACETIME.persona_kind([avp, avp]) is PersonaKind.SPATIAL
        assert FACETIME.persona_kind([avp, mac]) is PersonaKind.TWO_D
        assert ZOOM.persona_kind([avp, avp]) is PersonaKind.TWO_D

    def test_facetime_protocol_switch(self):
        avp, mac = VisionPro(), MacBook()
        assert FACETIME.protocol([avp, avp]) is Protocol.QUIC
        assert FACETIME.protocol([avp, mac]) is Protocol.RTP

    def test_others_always_rtp(self):
        avp = VisionPro()
        for profile in (ZOOM, WEBEX, TEAMS):
            assert profile.protocol([avp, avp]) is Protocol.RTP

    def test_p2p_policy(self):
        avp, mac = VisionPro(), MacBook()
        # FaceTime: P2P for two users unless both are on Vision Pro.
        assert FACETIME.uses_p2p([avp, mac])
        assert not FACETIME.uses_p2p([avp, avp])
        # Zoom: always P2P with two users.
        assert ZOOM.uses_p2p([avp, avp])
        # Webex/Teams: never P2P.
        assert not WEBEX.uses_p2p([avp, avp])
        assert not TEAMS.uses_p2p([avp, avp])

    def test_no_p2p_beyond_two_users(self):
        avp = VisionPro()
        assert not ZOOM.uses_p2p([avp, avp, avp])

    def test_resolutions_match_paper(self):
        # Sec. 4.2: 1920x1080 on Webex, 640x360 on Zoom.
        assert WEBEX.video_resolution == (1920, 1080)
        assert ZOOM.video_resolution == (640, 360)

    def test_registry_complete(self):
        assert set(PROFILES) == {"FaceTime", "Zoom", "Webex", "Teams"}


def run_source(source, duration_s=3.0, **attach_kwargs):
    """Attach a source between two hosts and collect arrivals at B."""
    sim = Simulator()
    network = Network(sim)
    a = Host("10.0.0.2", city("san jose"), name="A")
    b = Host("10.0.1.2", city("dallas"), name="B")
    network.attach(a)
    network.attach(b)
    received = []
    b.bind(40000, received.append)
    cap = network.start_capture(a.address)
    source.attach(sim, a, b.address, **attach_kwargs)
    sim.run(until=duration_s)
    return received, cap


class TestVideoSource:
    def test_wire_rate_matches_target(self):
        source = VideoSource(FACETIME.payload_type, target_mbps=2.0, seed=0)
        received, cap = run_source(source, duration_s=5.0)
        mbps = cap.total_bytes() * 8 / 5.0 / 1e6
        assert mbps == pytest.approx(2.0, rel=0.1)

    def test_payload_bytes_are_rtp(self):
        source = VideoSource(ZOOM.payload_type, target_mbps=1.0, seed=1)
        received, _ = run_source(source, duration_s=1.0)
        assert received
        for packet in received[:5]:
            assert looks_like_rtp(packet.payload)
            assert RtpHeader.parse(packet.payload).payload_type == 98

    def test_gop_pattern_visible(self):
        source = VideoSource(FACETIME.payload_type, target_mbps=2.0, seed=2)
        frame_sizes = [
            sum(len(p) for p in source.next_frame_payloads())
            for _ in range(60)
        ]
        i_frames = frame_sizes[0::30]
        p_frames = frame_sizes[1:29]
        assert min(i_frames) > 1.5 * np.mean(p_frames)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            VideoSource(FACETIME.payload_type, target_mbps=0)
        with pytest.raises(ValueError):
            VideoSource(FACETIME.payload_type, target_mbps=1, fps=0)


class TestSemanticSource:
    def test_rate_near_spatial_persona(self):
        source = SemanticSource(session_secret=b"k" * 32, seed=0, pool_size=64)
        received, cap = run_source(source, duration_s=3.0)
        mbps = cap.total_bytes() * 8 / 3.0 / 1e6
        assert mbps == pytest.approx(calibration.SPATIAL_PERSONA_MBPS, abs=0.08)

    def test_payloads_are_quic(self):
        source = SemanticSource(session_secret=b"k" * 32, seed=0, pool_size=16)
        received, _ = run_source(source, duration_s=0.5)
        assert received
        assert all(is_quic_datagram(p.payload) for p in received)

    def test_handshake_precedes_media(self):
        source = SemanticSource(session_secret=b"k" * 32, seed=0, pool_size=16)
        received, _ = run_source(source, duration_s=0.5)
        kinds = [p.meta["kind"] for p in received[:3]]
        assert kinds[0] == "quic-initial"
        assert kinds[1] == "quic-handshake"

    def test_frames_decodable_by_receiver(self):
        secret = b"k" * 32
        source = SemanticSource(session_secret=secret, seed=0, pool_size=16)
        received, _ = run_source(source, duration_s=0.5)
        media = [p for p in received if p.meta["kind"] == "semantic"]
        conn = quic_connection_for("10.0.0.2", secret)
        from repro.keypoints.codec import EncodedKeypointFrame, SemanticCodec

        decoded = SemanticCodec().decode(
            EncodedKeypointFrame(conn.unprotect(media[0].payload))
        )
        assert decoded.points.shape == (74, 3)

    def test_pool_size_validated(self):
        with pytest.raises(ValueError):
            SemanticSource(session_secret=b"k", pool_size=0)


class TestMeshSource:
    def test_rate_matches_draco_experiment(self):
        source = MeshSource(seed=0)
        expected = source.mean_frame_bytes * 8 * 90 / 1e6
        paper_mean, paper_std = calibration.DRACO_STREAMING_MBPS
        assert abs(expected - paper_mean) < 2 * paper_std

    def test_frames_fragment_to_mtu(self):
        source = MeshSource(seed=0)
        received, _ = run_source(source, duration_s=0.05)
        assert len(received) > 50  # ~150 KB frame in 1.2 KB chunks


class TestAudioSource:
    def test_rtp_audio_rate(self):
        source = AudioSource(bitrate_kbps=32.0, seed=0)
        received, cap = run_source(source, duration_s=4.0)
        kbps = cap.total_bytes() * 8 / 4.0 / 1e3
        assert 30 < kbps < 60  # payload target plus headers

    def test_quic_audio_when_secret_given(self):
        source = AudioSource(bitrate_kbps=32.0, seed=0, session_secret=b"k" * 32)
        received, _ = run_source(source, duration_s=0.5)
        assert all(is_quic_datagram(p.payload) for p in received)

    def test_invalid_bitrate(self):
        with pytest.raises(ValueError):
            AudioSource(bitrate_kbps=0)
