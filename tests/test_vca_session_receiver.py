"""Telepresence sessions end to end, and the semantic receiver."""

import pytest

from repro import calibration
from repro.core.testbed import default_two_user_testbed, multi_user_testbed
from repro.devices.models import MacBook, VisionPro
from repro.geo.regions import city
from repro.netsim.capture import Direction
from repro.netsim.shaper import TrafficShaper
from repro.vca.cohort import CohortRunner
from repro.vca.profiles import FACETIME, PROFILES, WEBEX, ZOOM, PersonaKind, Protocol
from repro.vca.session import Participant, TelepresenceSession


def two_user_session(profile=FACETIME, u2=None, seed=0):
    testbed = default_two_user_testbed(u2_device=u2)
    return testbed.session(profile, seed=seed)


class TestSessionSetup:
    def test_spatial_session_properties(self):
        session = two_user_session()
        assert session.persona_kind is PersonaKind.SPATIAL
        assert session.protocol is Protocol.QUIC
        assert not session.p2p
        assert session.server is not None

    def test_mixed_device_fallback(self):
        session = two_user_session(u2=MacBook())
        assert session.persona_kind is PersonaKind.TWO_D
        assert session.protocol is Protocol.RTP
        assert session.p2p
        assert session.server is None

    def test_server_follows_initiator(self):
        testbed = default_two_user_testbed(u1_city="washington",
                                           u2_city="san jose")
        session = testbed.session(WEBEX, seed=0)
        assert session.server.label == "E"
        flipped = testbed.session(WEBEX, seed=0, initiator_index=1)
        assert flipped.server.label == "W"

    def test_spatial_persona_user_cap(self):
        with pytest.raises(ValueError, match="at most"):
            multi_user_testbed(
                6, cities=["san jose", "dallas", "washington", "chicago",
                           "seattle", "miami"]
            ).session(FACETIME)

    def test_six_users_fine_for_2d_vcas(self):
        testbed = multi_user_testbed(
            6, cities=["san jose", "dallas", "washington", "chicago",
                       "seattle", "miami"]
        )
        session = testbed.session(WEBEX)
        assert session.persona_kind is PersonaKind.TWO_D

    def test_single_participant_rejected(self):
        with pytest.raises(ValueError):
            TelepresenceSession(
                FACETIME, [Participant("U1", VisionPro(), city("dallas"))]
            )


class TestSessionTraffic:
    def test_spatial_uplink_rate(self):
        result = two_user_session().run(10.0)
        mbps = result.capture_of("U1").total_bytes(Direction.UPLINK) * 8 / 10 / 1e6
        assert mbps == pytest.approx(calibration.SPATIAL_PERSONA_MBPS, abs=0.1)

    def test_downlink_mirrors_uplink_two_users(self):
        result = two_user_session().run(10.0)
        cap = result.capture_of("U1")
        up = cap.total_bytes(Direction.UPLINK)
        down = cap.total_bytes(Direction.DOWNLINK)
        assert down == pytest.approx(up, rel=0.1)

    def test_receiver_sees_full_availability(self):
        result = two_user_session().run(10.0)
        receiver = result.receiver_of("U2")
        u1 = result.addresses["U1"]
        assert receiver.stats[u1].availability() > 0.97
        assert not receiver.any_poor_connection()

    def test_2d_session_counts_video(self):
        result = two_user_session(u2=MacBook()).run(5.0)
        assert result.video_packets_received["U2"] > 0

    def test_shaped_uplink_starves_persona(self):
        session = two_user_session(seed=3)
        session.shape_uplink("U1", TrafficShaper(rate_bps=400_000))
        result = session.run(10.0)
        receiver = result.receiver_of("U2")
        u1 = result.addresses["U1"]
        assert receiver.stats[u1].poor_connection()

    def test_injected_delay_does_not_break_persona(self):
        session = two_user_session(seed=4)
        session.shape_uplink("U1", TrafficShaper(delay_ms=500))
        result = session.run(10.0)
        receiver = result.receiver_of("U2")
        u1 = result.addresses["U1"]
        assert not receiver.stats[u1].poor_connection()

    def test_multi_user_downlink_scales(self):
        rates = {}
        for n in (2, 4):
            testbed = multi_user_testbed(n)
            result = testbed.session(FACETIME, seed=0).run(8.0)
            cap = result.capture_of("U1")
            rates[n] = cap.total_bytes(Direction.DOWNLINK) * 8 / 8.0 / 1e6
        assert rates[4] == pytest.approx(3 * rates[2], rel=0.15)

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            two_user_session().run(0)


class TestBatchCohortFacade:
    """The traffic scenarios above, re-run through the batch engine.

    One :class:`~repro.vca.cohort.CohortRunner` hosts the whole cohort
    on a shared engine; every lane must exhibit the same invariants a
    session on its own scalar simulator does.
    """

    @pytest.mark.parametrize("cohort_size", [1, 4, 32])
    def test_traffic_invariants_hold_on_every_lane(self, cohort_size):
        duration = 3.0 if cohort_size < 32 else 2.0
        runner = CohortRunner()
        for seed in range(cohort_size):
            runner.add(lambda sim, s=seed: default_two_user_testbed().session(
                FACETIME, seed=s, sim=sim))
        for result in runner.run(duration):
            cap = result.capture_of("U1")
            up = cap.total_bytes(Direction.UPLINK)
            mbps = up * 8 / duration / 1e6
            assert mbps == pytest.approx(calibration.SPATIAL_PERSONA_MBPS,
                                         abs=0.15)
            assert cap.total_bytes(Direction.DOWNLINK) == pytest.approx(
                up, rel=0.1)
            receiver = result.receiver_of("U2")
            u1 = result.addresses["U1"]
            assert receiver.stats[u1].availability() > 0.97
            assert not receiver.any_poor_connection()

    @pytest.mark.parametrize("cohort_size", [1, 4])
    def test_shaped_lane_starves_only_itself(self, cohort_size):
        runner = CohortRunner()
        sessions = [
            runner.add(lambda sim, s=seed:
                       default_two_user_testbed().session(FACETIME, seed=s,
                                                          sim=sim))
            for seed in range(cohort_size)
        ]
        sessions[-1].shape_uplink("U1", TrafficShaper(rate_bps=400_000))
        results = runner.run(6.0)
        for i, result in enumerate(results):
            receiver = result.receiver_of("U2")
            u1 = result.addresses["U1"]
            starved = receiver.stats[u1].poor_connection()
            assert starved == (i == cohort_size - 1), i


class TestReceiverAccounting:
    def test_availability_zero_before_traffic(self):
        from repro.vca.receiver import PersonaAvailability

        fresh = PersonaAvailability("x")
        assert fresh.availability() == 0.0
        assert fresh.poor_connection()

    def test_expected_fps_validated(self):
        from repro.vca.receiver import PersonaAvailability

        with pytest.raises(ValueError):
            PersonaAvailability("x").availability(expected_fps=0)

    def test_corrupt_frames_counted_failed(self):
        from repro.netsim.packet import IPPROTO_UDP, Packet
        from repro.vca.receiver import SemanticReceiver

        receiver = SemanticReceiver(b"secret" * 4, clock=lambda: 1.0)
        bogus = Packet("10.0.0.2", "10.0.1.2", 1, 2, IPPROTO_UDP,
                       b"\x40" + b"junk" * 10, meta={"kind": "semantic"})
        receiver.handle(bogus)
        stats = receiver.stats["10.0.0.2"]
        assert stats.frames_failed == 1
        assert stats.frames_reconstructed == 0

    def test_non_semantic_packets_ignored(self):
        from repro.netsim.packet import IPPROTO_UDP, Packet
        from repro.vca.receiver import SemanticReceiver

        receiver = SemanticReceiver(b"secret" * 4, clock=lambda: 1.0)
        audio = Packet("10.0.0.2", "10.0.1.2", 1, 2, IPPROTO_UDP, b"a",
                       meta={"kind": "audio"})
        receiver.handle(audio)
        assert receiver.other_packets == 1
        assert receiver.stats == {}
