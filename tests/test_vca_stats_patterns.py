"""In-app statistics panels and encrypted-traffic pattern inference."""

import pytest

from repro.analysis.patterns import (
    InferredContent,
    classify_content,
    estimate_rtp_loss,
    largest_flow,
    profile_records,
    segment_bursts,
    split_flows,
)
from repro.core.testbed import default_two_user_testbed
from repro.geo.regions import city
from repro.netsim.capture import CapturedPacket, Direction
from repro.netsim.engine import Simulator
from repro.netsim.network import Network
from repro.netsim.node import Host
from repro.netsim.packet import IPPROTO_UDP
from repro.netsim.shaper import TrafficShaper
from repro.vca.media import MeshSource
from repro.vca.profiles import FACETIME, WEBEX, ZOOM


@pytest.fixture(scope="module")
def webex_result():
    return default_two_user_testbed().session(WEBEX, seed=0).run(10.0)


@pytest.fixture(scope="module")
def facetime_result():
    return default_two_user_testbed().session(FACETIME, seed=0).run(5.0)


class TestInAppStatistics:
    def test_panel_reports_profile_resolution(self, webex_result):
        stats = webex_result.stats_of("U1")
        origin = stats.origins()[0]
        assert stats.snapshot(origin).resolution == (1920, 1080)

    def test_frame_rate_near_encoder_fps(self, webex_result):
        stats = webex_result.stats_of("U1")
        snap = stats.snapshot(stats.origins()[0])
        assert snap.frame_rate_fps == pytest.approx(30.0, abs=1.5)

    def test_receive_bitrate_near_target(self, webex_result):
        stats = webex_result.stats_of("U1")
        snap = stats.snapshot(stats.origins()[0])
        assert snap.receive_mbps == pytest.approx(4.3, rel=0.1)

    def test_no_loss_on_clean_path(self, webex_result):
        stats = webex_result.stats_of("U1")
        snap = stats.snapshot(stats.origins()[0])
        assert snap.packet_loss == 0.0

    def test_rtt_matches_relayed_path(self, webex_result):
        stats = webex_result.stats_of("U1")
        snap = stats.snapshot(stats.origins()[0])
        # San Jose -> Webex W relay -> Dallas and back: tens of ms.
        assert snap.rtt_ms is not None
        assert 40 < snap.rtt_ms < 70

    def test_jitter_small_on_uncongested_path(self, webex_result):
        stats = webex_result.stats_of("U1")
        snap = stats.snapshot(stats.origins()[0])
        assert snap.jitter_ms < 5.0

    def test_spatial_sessions_have_no_panel(self, facetime_result):
        # The in-app statistics tools exist for the RTP/2D apps only.
        assert facetime_result.stats_collectors == {}

    def test_unknown_origin_raises(self, webex_result):
        with pytest.raises(KeyError):
            webex_result.stats_of("U1").snapshot("203.0.113.1")


class TestBurstSegmentation:
    def _records(self, times, size=100):
        return [
            CapturedPacket(t, Direction.UPLINK, size, "a", "b", 1, 2,
                           IPPROTO_UDP, b"")
            for t in times
        ]

    def test_single_burst(self):
        bursts = segment_bursts(self._records([0.0, 0.001, 0.002]))
        assert len(bursts) == 1
        assert bursts[0].packets == 3

    def test_gap_splits_bursts(self):
        bursts = segment_bursts(self._records([0.0, 0.001, 0.030, 0.031]))
        assert len(bursts) == 2

    def test_empty(self):
        assert segment_bursts([]) == []

    def test_invalid_gap(self):
        with pytest.raises(ValueError):
            segment_bursts([], gap_s=0)

    def test_profile_requires_two_bursts(self):
        with pytest.raises(ValueError):
            profile_records(self._records([0.0, 0.001]))

    def test_flow_split(self):
        records = self._records([0.0]) + [
            CapturedPacket(0.1, Direction.UPLINK, 50, "a", "b", 9, 2,
                           IPPROTO_UDP, b"")
        ]
        assert len(split_flows(records)) == 2

    def test_largest_flow_empty_raises(self):
        with pytest.raises(ValueError):
            largest_flow([])


class TestContentInference:
    def test_semantic_stream_classified(self, facetime_result):
        flow = largest_flow(
            facetime_result.capture_of("U1").filter(direction=Direction.UPLINK)
        )
        profile = profile_records(flow)
        assert classify_content(profile) is InferredContent.SEMANTIC_KEYPOINTS
        assert profile.estimated_fps == pytest.approx(90, abs=3)

    def test_video_stream_classified(self, webex_result):
        flow = largest_flow(
            webex_result.capture_of("U1").filter(direction=Direction.UPLINK)
        )
        profile = profile_records(flow)
        assert classify_content(profile) is InferredContent.VIDEO_2D
        assert profile.estimated_fps == pytest.approx(30, abs=2)

    def test_mesh_stream_classified(self):
        sim = Simulator()
        network = Network(sim)
        a = Host("10.0.0.2", city("san jose"))
        b = Host("10.0.1.2", city("dallas"))
        network.attach(a)
        network.attach(b)
        b.bind(40000, lambda p: None)
        capture = network.start_capture(a.address)
        MeshSource(seed=0).attach(sim, a, b.address)
        sim.run(until=0.4)
        profile = profile_records(
            largest_flow(capture.filter(direction=Direction.UPLINK))
        )
        assert classify_content(profile) is InferredContent.MESH_3D

    def test_unknown_for_degenerate_pattern(self):
        from repro.analysis.patterns import TrafficProfile

        weird = TrafficProfile(burst_count=5, estimated_fps=5.0,
                               mean_frame_bytes=100.0, frame_size_cv=0.01,
                               mean_packets_per_frame=1.0, mean_mbps=0.01)
        assert classify_content(weird) is InferredContent.UNKNOWN


class TestRtpLossInference:
    def test_clean_stream_zero_loss(self, webex_result):
        records = webex_result.capture_of("U1").filter(
            direction=Direction.DOWNLINK
        )
        assert estimate_rtp_loss(records).loss_rate == pytest.approx(0.0)

    def test_shaped_loss_recovered(self):
        session = default_two_user_testbed().session(ZOOM, seed=1)
        session.shape_uplink("U2", TrafficShaper(loss=0.08, seed=3))
        result = session.run(8.0)
        records = result.capture_of("U1").filter(direction=Direction.DOWNLINK)
        estimate = estimate_rtp_loss(records)
        assert estimate.loss_rate == pytest.approx(0.08, abs=0.03)

    def test_no_rtp_records(self):
        assert estimate_rtp_loss([]).loss_rate == 0.0
